package pipeline

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/token"
	"repro/internal/workflow"
)

func flavorTables(n int) map[string][]dataset.Record {
	t, _ := SourceSpec{Dataset: "flavors", Records: n}.Tables()
	return t
}

func TestCompileValidation(t *testing.T) {
	cases := []struct {
		name   string
		stages []StageSpec
		want   string
	}{
		{"empty", nil, "no stages"},
		{"unnamed", []StageSpec{{Kind: KindFilter, Predicate: "p"}}, "needs a name"},
		{"reserved", []StageSpec{{Name: "source", Kind: KindFilter, Predicate: "p"}}, "needs a name"},
		{"dup names", []StageSpec{
			{Name: "a", Kind: KindFilter, Predicate: "p"},
			{Name: "a", Kind: KindFilter, Predicate: "p"},
		}, "duplicate stage name"},
		{"forward input", []StageSpec{
			{Name: "a", Kind: KindFilter, Predicate: "p", Input: "b"},
			{Name: "b", Kind: KindFilter, Predicate: "p", Input: "source"},
		}, "not source or an earlier stage"},
		{"unknown kind", []StageSpec{{Name: "a", Kind: "mapreduce"}}, "unknown kind"},
		{"filter needs predicate", []StageSpec{{Name: "a", Kind: KindFilter}}, "needs a predicate"},
		{"sort needs criterion", []StageSpec{{Name: "a", Kind: KindSort}}, "needs a criterion"},
		{"impute needs target", []StageSpec{{Name: "a", Kind: KindImpute}}, "needs a target_field"},
		{"join needs side", []StageSpec{{Name: "a", Kind: KindJoin}}, "needs a side table"},
		{"categorize needs categories", []StageSpec{{Name: "a", Kind: KindCategorize}}, "needs categories"},
	}
	for _, tc := range cases {
		_, err := Compile(Spec{Stages: tc.stages})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	ok := Spec{Stages: []StageSpec{
		{Name: "a", Kind: KindFilter, Predicate: "p"},
		{Name: "b", Kind: KindCount, Predicate: "q"}, // input defaults to "a"
	}}
	p, err := Compile(ok)
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if got := p.Stages()[1].Input(); got != "a" {
		t.Fatalf("default input = %q, want previous stage", got)
	}
}

func optimizeOrder(t *testing.T, stages []StageSpec) ([]string, []string) {
	t.Helper()
	out, log, err := Optimize(Spec{Stages: stages})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(out); err != nil {
		t.Fatalf("optimized spec does not compile: %v", err)
	}
	names := make([]string, len(out.Stages))
	for i, s := range out.Stages {
		names[i] = s.Name
	}
	return names, log
}

func TestOptimizeFilterPushdownRules(t *testing.T) {
	filter := func(field string) StageSpec {
		return StageSpec{Name: "f", Kind: KindFilter, Field: field, Predicate: "p"}
	}
	cases := []struct {
		name   string
		first  StageSpec
		filter StageSpec
		pushed bool
	}{
		{"pairwise dedupe, invariant field",
			StageSpec{Name: "s", Kind: KindResolve, InvariantFields: []string{"type"}}, filter("type"), true},
		{"pairwise dedupe, non-invariant field",
			StageSpec{Name: "s", Kind: KindResolve, InvariantFields: []string{"type"}}, filter("name"), false},
		{"blocked dedupe never",
			StageSpec{Name: "s", Kind: KindResolve, Strategy: "blocked-pairwise", InvariantFields: []string{"type"}}, filter("type"), false},
		{"dedupe, whole-record filter",
			StageSpec{Name: "s", Kind: KindResolve, InvariantFields: []string{"type"}}, filter(""), false},
		{"impute other field",
			StageSpec{Name: "s", Kind: KindImpute, TargetField: "city"}, filter("type"), true},
		{"impute filtered field",
			StageSpec{Name: "s", Kind: KindImpute, TargetField: "city"}, filter("city"), false},
		{"auto impute never (planner costs scale with table size)",
			StageSpec{Name: "s", Kind: KindImpute, TargetField: "city", Strategy: "auto"}, filter("type"), false},
		{"impute, whole-record filter",
			StageSpec{Name: "s", Kind: KindImpute, TargetField: "city"}, filter(""), false},
		{"categorize other field",
			StageSpec{Name: "s", Kind: KindCategorize, Categories: []string{"a"}, OutField: "cat"}, filter("name"), true},
		{"categorize written field",
			StageSpec{Name: "s", Kind: KindCategorize, Categories: []string{"a"}, OutField: "cat"}, filter("cat"), false},
		{"two-phase categorize never",
			StageSpec{Name: "s", Kind: KindCategorize, Strategy: "two-phase"}, filter("name"), false},
		{"rating sort",
			StageSpec{Name: "s", Kind: KindSort, Criterion: "c", Strategy: "rating"}, filter("name"), true},
		{"rating sort, whole-record filter",
			StageSpec{Name: "s", Kind: KindSort, Criterion: "c", Strategy: "rating"}, filter(""), true},
		{"one-prompt sort never",
			StageSpec{Name: "s", Kind: KindSort, Criterion: "c"}, filter("name"), false},
		{"nested-loop join",
			StageSpec{Name: "s", Kind: KindJoin, Side: "right", Strategy: "nested-loop"}, filter("name"), true},
		{"transitive join never",
			StageSpec{Name: "s", Kind: KindJoin, Side: "right"}, filter("name"), false},
		{"count never",
			StageSpec{Name: "s", Kind: KindCount, Predicate: "q"}, filter("name"), false},
	}
	for _, tc := range cases {
		names, log := optimizeOrder(t, []StageSpec{tc.first, tc.filter})
		pushed := names[0] == "f"
		if pushed != tc.pushed {
			t.Errorf("%s: order %v (log %v), want pushed=%v", tc.name, names, log, tc.pushed)
		}
	}
}

func TestOptimizeFilterOrderBySelectivity(t *testing.T) {
	names, _ := optimizeOrder(t, []StageSpec{
		{Name: "loose", Kind: KindFilter, Field: "a", Predicate: "p", Selectivity: 0.9},
		{Name: "tight", Kind: KindFilter, Field: "a", Predicate: "q", Selectivity: 0.1},
	})
	if names[0] != "tight" || names[1] != "loose" {
		t.Fatalf("order = %v, want most selective filter first", names)
	}
	// Equal selectivity must not swap (and must terminate).
	names, log := optimizeOrder(t, []StageSpec{
		{Name: "a", Kind: KindFilter, Field: "a", Predicate: "p"},
		{Name: "b", Kind: KindFilter, Field: "a", Predicate: "q"},
	})
	if names[0] != "a" || len(log) != 0 {
		t.Fatalf("equal selectivity reordered: %v (%v)", names, log)
	}
}

func TestOptimizeRespectsOtherConsumers(t *testing.T) {
	// The impute output feeds both the filter and a count; pushing the
	// filter above impute would hand the count a filtered table.
	names, log := optimizeOrder(t, []StageSpec{
		{Name: "s", Kind: KindImpute, TargetField: "city", Input: "source"},
		{Name: "f", Kind: KindFilter, Field: "type", Predicate: "p", Input: "s"},
		{Name: "c", Kind: KindCount, Predicate: "q", Input: "s"},
	})
	if names[0] != "s" || len(log) != 0 {
		t.Fatalf("filter crossed a multi-consumer stage: %v (%v)", names, log)
	}
}

func TestOptimizeChainsThroughMultipleStages(t *testing.T) {
	// filter starts last and must sift past both per-record stages to the
	// front.
	names, log := optimizeOrder(t, []StageSpec{
		{Name: "cat", Kind: KindCategorize, Categories: []string{"x"}, OutField: "cat", Input: "source"},
		{Name: "imp", Kind: KindImpute, TargetField: "city"},
		{Name: "f", Kind: KindFilter, Field: "name", Predicate: "p"},
	})
	want := []string{"f", "cat", "imp"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("order = %v (log %v), want %v", names, log, want)
		}
	}
	if len(log) != 2 {
		t.Fatalf("rewrite log = %v, want two pushes", log)
	}
}

func TestPipelineRunFilterSort(t *testing.T) {
	spec := Spec{Stages: []StageSpec{
		{Name: "choc", Kind: KindFilter, Field: "name", Predicate: "it is a chocolatey flavor"},
		{Name: "rank", Kind: KindSort, Field: "name", Criterion: "how chocolatey they are", Strategy: "rating"},
	}}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	budget := workflow.Unlimited()
	res, err := p.Run(context.Background(), ExecConfig{
		Model:  sim.NewNamed("sim-gpt-3.5-turbo"),
		Budget: budget,
	}, flavorTables(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables["choc"]) == 0 || len(res.Tables["rank"]) != len(res.Tables["choc"]) {
		t.Fatalf("tables: choc %d, rank %d", len(res.Tables["choc"]), len(res.Tables["rank"]))
	}
	// Per-stage attribution sums to the run total, and the run total is
	// exactly what the shared budget recorded.
	var sum token.Usage
	for _, s := range res.Stages {
		sum = sum.Add(s.Usage)
	}
	if sum != res.Usage {
		t.Fatalf("stage sum %+v != total %+v", sum, res.Usage)
	}
	spent, dollars := budget.Spent()
	if spent != res.Usage {
		t.Fatalf("budget spent %+v != attributed %+v", spent, res.Usage)
	}
	// Same per-call charges, different accumulation order: compare dollars
	// within float tolerance.
	if diff := dollars - res.Cost; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("budget dollars %g != attributed cost %g", dollars, res.Cost)
	}
	out := FormatResult(res)
	if !strings.Contains(out, "rank") || !strings.Contains(out, "total:") {
		t.Fatalf("report missing fields:\n%s", out)
	}
}

// TestPipelineRunsBranchesConcurrently proves independent DAG branches
// overlap: with a one-record source, each branch issues exactly one
// upstream call, and the model releases them only when both are in flight.
// A sequential executor would park the first branch's call until timeout.
func TestPipelineRunsBranchesConcurrently(t *testing.T) {
	var arrivals atomic.Int32
	release := make(chan struct{})
	model := llm.Func{ModelName: "barrier", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		if arrivals.Add(1) == 2 {
			close(release)
		}
		select {
		case <-release:
		case <-time.After(10 * time.Second):
			t.Error("branches did not run concurrently")
		case <-ctx.Done():
			return llm.Response{}, ctx.Err()
		}
		return llm.Response{Text: "Yes", Model: "barrier", Usage: token.Usage{PromptTokens: 1, CompletionTokens: 1, Calls: 1}}, nil
	}}
	spec := Spec{Stages: []StageSpec{
		{Name: "left", Kind: KindFilter, Field: "name", Predicate: "p", Input: "source"},
		{Name: "right", Kind: KindFilter, Field: "name", Predicate: "q", Input: "source"},
	}}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background(), ExecConfig{Model: model}, flavorTables(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables["left"]) != 1 || len(res.Tables["right"]) != 1 {
		t.Fatalf("both branches should keep the record: %+v", res.Tables)
	}
}

func TestPipelineEmptyTableSkipsDownstream(t *testing.T) {
	model := llm.Func{ModelName: "no", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{Text: "No", Model: "no", Usage: token.Usage{Calls: 1}}, nil
	}}
	spec := Spec{Stages: []StageSpec{
		{Name: "drop", Kind: KindFilter, Field: "name", Predicate: "p"},
		{Name: "rank", Kind: KindSort, Field: "name", Criterion: "c", Strategy: "rating"},
		{Name: "n", Kind: KindCount, Predicate: "q"},
	}}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background(), ExecConfig{Model: model}, flavorTables(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables["drop"]) != 0 || len(res.Tables["rank"]) != 0 {
		t.Fatalf("tables = %+v, want empty", res.Tables)
	}
	if d := res.Stages[1].Detail; !strings.Contains(d, "skipped") {
		t.Fatalf("downstream stage detail = %q, want skipped marker", d)
	}
	// A count over the empty table still answers: 0. Whether the scalar
	// exists must not depend on where the optimizer put the filter.
	if got := res.Scalars["n"]; got != "0" {
		t.Fatalf("count scalar = %q, want \"0\" on empty input", got)
	}
}

// TestPipelineSurfacesRootCauseError: when one branch fails and cancels
// the run, the sibling branch's context-cancellation error must not mask
// the failing stage's real error.
func TestPipelineSurfacesRootCauseError(t *testing.T) {
	started := make(chan struct{})
	model := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		if strings.Contains(req.Prompt, "boom") {
			<-started // fail only after the slow branch is in flight
			return llm.Response{}, fmt.Errorf("upstream exploded")
		}
		close(started)
		<-ctx.Done() // the slow branch dies of the cancellation
		return llm.Response{}, ctx.Err()
	}}
	spec := Spec{Stages: []StageSpec{
		{Name: "slow", Kind: KindFilter, Field: "name", Predicate: "p", Input: "source"},
		{Name: "bad", Kind: KindFilter, Field: "name", Predicate: "boom", Input: "source"},
	}}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(context.Background(), ExecConfig{Model: model}, flavorTables(1))
	if err == nil || !strings.Contains(err.Error(), "upstream exploded") || !strings.Contains(err.Error(), `"bad"`) {
		t.Fatalf("err = %v, want the failing stage's root cause", err)
	}
}

func TestImputeAutoInvokesPlanner(t *testing.T) {
	ds, _ := SourceSpec{Dataset: "restaurants", Records: 4, Train: 24, Seed: 5}.Tables()
	// Mask the target so the imputation is real.
	for i, r := range ds["source"] {
		ds["source"][i] = r.WithoutField("city")
	}
	spec := Spec{Stages: []StageSpec{
		{Name: "city", Kind: KindImpute, TargetField: "city", Strategy: "auto", Neighbors: 3},
	}}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background(), ExecConfig{Model: sim.NewNamed("sim-claude")}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stages[0].Detail, "planner chose") {
		t.Fatalf("detail = %q, want planner note", res.Stages[0].Detail)
	}
	for _, r := range res.Tables["city"] {
		if v, ok := r.Get("city"); !ok || v == "" {
			t.Fatalf("record %s not imputed", r.ID)
		}
	}
}

func TestSourceSpecTables(t *testing.T) {
	if _, err := (SourceSpec{Dataset: "nope"}).Tables(); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	ts, err := SourceSpec{Dataset: "restaurants", Records: 6, Train: 12}.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts["source"]) != 6 || len(ts["train"]) != 12 {
		t.Fatalf("tables sized %d/%d", len(ts["source"]), len(ts["train"]))
	}
	fl := flavorTables(5)
	if len(fl["source"]) != 5 {
		t.Fatalf("flavors sized %d", len(fl["source"]))
	}
}

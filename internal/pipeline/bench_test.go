package pipeline

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/llm/sim"
)

// benchSpec is a small filter→dedupe→impute chain in the pessimal user
// order, the shape the optimizer rewrites.
func benchSpec() Spec {
	return Spec{Stages: []StageSpec{
		{Name: "entities", Kind: KindResolve, Input: "source",
			Strategy: "pairwise", InvariantFields: []string{"type"}},
		{Name: "cheap", Kind: KindFilter, Field: "type",
			Predicate: "the restaurant serves seafood, steak, or pizza", Selectivity: 0.3},
		{Name: "city", Kind: KindImpute, TargetField: "city",
			Side: "train", Strategy: "hybrid", Neighbors: 3},
	}}
}

func benchTables(b *testing.B) map[string][]dataset.Record {
	b.Helper()
	ds := dataset.GenerateRestaurants(40, 12, 7)
	source := make([]dataset.Record, len(ds.Test))
	for i, r := range ds.Test {
		source[i] = r.WithoutField(ds.TargetField)
	}
	return map[string][]dataset.Record{"source": source, "train": ds.Train}
}

func benchRun(b *testing.B, spec Spec, cfg ExecConfig) {
	b.Helper()
	p, err := Compile(spec)
	if err != nil {
		b.Fatal(err)
	}
	tables := benchTables(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(context.Background(), cfg, tables); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineNaive is the seed behaviour: user stage order, one
// isolated engine per stage, whole-table handoff.
func BenchmarkPipelineNaive(b *testing.B) {
	benchRun(b, benchSpec(), ExecConfig{
		Model: sim.NewNamed("sim-gpt-3.5-turbo"), Parallelism: 16, Isolated: true, Materialized: true,
	})
}

// BenchmarkPipelineOptimized runs the optimizer's rewritten plan on one
// shared engine with batching and record streaming (the default).
func BenchmarkPipelineOptimized(b *testing.B) {
	spec, _, err := Optimize(benchSpec())
	if err != nil {
		b.Fatal(err)
	}
	benchRun(b, spec, ExecConfig{
		Model: sim.NewNamed("sim-gpt-3.5-turbo"), Parallelism: 16, Batch: 8,
	})
}

// BenchmarkPipelineOptimizedMaterialized is the same plan with streaming
// disabled — the wall-clock delta against BenchmarkPipelineOptimized is
// what record-level streaming buys (or costs) on this workload.
func BenchmarkPipelineOptimizedMaterialized(b *testing.B) {
	spec, _, err := Optimize(benchSpec())
	if err != nil {
		b.Fatal(err)
	}
	benchRun(b, spec, ExecConfig{
		Model: sim.NewNamed("sim-gpt-3.5-turbo"), Parallelism: 16, Batch: 8, Materialized: true,
	})
}

// BenchmarkPipelineAdaptive runs the optimized plan under the adaptive
// runtime: self-tuned chunk widths and mid-run filter re-ordering. The
// delta against BenchmarkPipelineOptimized is the adaptive machinery's
// overhead (or win) when the static plan was already good.
func BenchmarkPipelineAdaptive(b *testing.B) {
	spec, _, err := Optimize(benchSpec())
	if err != nil {
		b.Fatal(err)
	}
	benchRun(b, spec, ExecConfig{
		Model: sim.NewNamed("sim-gpt-3.5-turbo"), Parallelism: 16, Batch: 8, Adaptive: true,
	})
}

// BenchmarkPipelineOptimize measures the optimizer itself (pure plan
// rewriting, no LLM work).
func BenchmarkPipelineOptimize(b *testing.B) {
	spec := benchSpec()
	for i := 0; i < b.N; i++ {
		if _, _, err := Optimize(spec); err != nil {
			b.Fatal(err)
		}
	}
}

package pipeline

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Stage is one operator node of a compiled pipeline: a thin typed wrapper
// that renders records into the operator's item shape, invokes the engine,
// and folds the result back into a record table.
type Stage interface {
	// Name is the stage's unique identifier from the spec.
	Name() string
	// Kind is the wrapped operator.
	Kind() string
	// Input names the upstream stage ("source" for the root table).
	Input() string
	// Run executes the operator over the input table within env and
	// returns the stage's output table.
	Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error)
}

// baseStage carries the shared identity fields.
type baseStage struct{ spec StageSpec }

func (b baseStage) Name() string  { return b.spec.Name }
func (b baseStage) Kind() string  { return b.spec.Kind }
func (b baseStage) Input() string { return b.spec.Input }

// buildStage constructs the concrete stage for a validated spec.
func buildStage(s StageSpec) (Stage, error) {
	base := baseStage{spec: s}
	switch s.Kind {
	case KindFilter:
		return filterStage{base}, nil
	case KindCategorize:
		return categorizeStage{base}, nil
	case KindResolve:
		return resolveStage{base}, nil
	case KindImpute:
		return imputeStage{base}, nil
	case KindJoin:
		return joinStage{base}, nil
	case KindSort:
		return sortStage{base}, nil
	case KindMax:
		return maxStage{base}, nil
	case KindCount:
		return countStage{base}, nil
	}
	return nil, fmt.Errorf("pipeline: unknown kind %q", s.Kind)
}

// render turns a record into the operator's item text: a single field's
// value, or the full serialized record when no field is selected.
func render(r dataset.Record, field string) string {
	if field == "" {
		return r.String()
	}
	v, _ := r.Get(field)
	return v
}

func renderAll(in []dataset.Record, field string) []string {
	out := make([]string, len(in))
	for i, r := range in {
		out[i] = render(r, field)
	}
	return out
}

func entities(in []dataset.Record, field string) []core.Entity {
	out := make([]core.Entity, len(in))
	for i, r := range in {
		out[i] = core.Entity{ID: r.ID, Text: render(r, field)}
	}
	return out
}

type filterStage struct{ baseStage }

func (s filterStage) Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error) {
	res, err := env.Engine.Filter(ctx, core.FilterRequest{
		Items:     renderAll(in, s.spec.Field),
		Predicate: s.spec.Predicate,
		Strategy:  core.FilterStrategy(s.spec.Strategy),
	})
	if err != nil {
		return nil, err
	}
	var out []dataset.Record
	for i, keep := range res.Keep {
		if keep {
			out = append(out, in[i])
		}
	}
	env.detail(s.Name(), fmt.Sprintf("kept %d/%d (%d asks)", len(out), len(in), res.Asks))
	return out, nil
}

type categorizeStage struct{ baseStage }

func (s categorizeStage) Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error) {
	res, err := env.Engine.Categorize(ctx, core.CategorizeRequest{
		Items:      renderAll(in, s.spec.Field),
		Categories: s.spec.Categories,
		Strategy:   core.CategorizeStrategy(s.spec.Strategy),
	})
	if err != nil {
		return nil, err
	}
	field := s.spec.OutField
	if field == "" {
		field = "category"
	}
	out := make([]dataset.Record, len(in))
	for i, r := range in {
		out[i] = r.Clone()
		out[i].Set(field, res.Assignments[i])
	}
	env.detail(s.Name(), fmt.Sprintf("%d categories", len(res.Categories)))
	return out, nil
}

// resolveStage deduplicates the table: records the engine judges to refer
// to one entity collapse to a single representative — deterministically
// the member with the lexicographically smallest ID — preserving input
// order.
type resolveStage struct{ baseStage }

func (s resolveStage) Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error) {
	seen := make(map[string]bool, len(in))
	for _, r := range in {
		if seen[r.ID] {
			return nil, fmt.Errorf("stage %q: duplicate record ID %q", s.Name(), r.ID)
		}
		seen[r.ID] = true
	}
	res, err := env.Engine.Dedupe(ctx, core.DedupeRequest{
		Records:       entities(in, s.spec.Field),
		Strategy:      core.DedupeStrategy(s.spec.Strategy),
		BlockDistance: s.spec.BlockDistance,
	})
	if err != nil {
		return nil, err
	}
	keep := make(map[string]bool, len(res.Groups))
	for _, g := range res.Groups {
		rep := g[0]
		for _, id := range g[1:] {
			if id < rep {
				rep = id
			}
		}
		keep[rep] = true
	}
	var out []dataset.Record
	for _, r := range in {
		if keep[r.ID] {
			out = append(out, r)
		}
	}
	env.detail(s.Name(), fmt.Sprintf("%d records -> %d entities (%d comparisons)", len(in), len(out), res.LLMComparisons))
	return out, nil
}

type imputeStage struct{ baseStage }

func (s imputeStage) Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error) {
	side := s.spec.Side
	if side == "" {
		side = "train"
	}
	train := env.Tables[side]
	if len(train) == 0 {
		return nil, fmt.Errorf("stage %q: side table %q is empty or missing", s.Name(), side)
	}
	strategy := s.spec.Strategy
	note := ""
	if strategy == "auto" {
		// Per-stage planning under the whole-pipeline budget: profile the
		// impute strategies on held-out training records and pick under
		// whatever dollar headroom the shared budget still has. An
		// exhausted cap must stay a cap — PlanStrategies reads
		// maxDollars <= 0 as unlimited, so clamp to the smallest positive
		// budget instead: only free strategies fit, everything else falls
		// through to the cheapest-overall rule.
		maxDollars := 0.0
		if rem, capped := env.Budget.RemainingDollars(); capped {
			maxDollars = rem
			if maxDollars <= 0 {
				maxDollars = math.SmallestNonzeroFloat64
			}
		}
		holdout := len(train) / 4
		if holdout < 1 {
			holdout = 1
		}
		if holdout >= len(train) {
			return nil, fmt.Errorf("stage %q: %d training records are too few to plan over", s.Name(), len(train))
		}
		target := s.spec.TargetAccuracy
		if target == 0 {
			target = 0.8
		}
		plan, err := env.Engine.PlanImpute(ctx, train, s.spec.TargetField,
			[]core.ImputeStrategy{core.ImputeKNN, core.ImputeLLM, core.ImputeHybrid},
			holdout, s.spec.Examples, target, maxDollars, len(in))
		if err != nil {
			return nil, fmt.Errorf("stage %q: planning: %w", s.Name(), err)
		}
		strategy = plan.Chosen
		note = fmt.Sprintf("; planner chose %q (%s)", plan.Chosen, plan.Reason)
	}
	res, err := env.Engine.Impute(ctx, core.ImputeRequest{
		Train:       train,
		Queries:     in,
		TargetField: s.spec.TargetField,
		Strategy:    core.ImputeStrategy(strategy),
		Neighbors:   s.spec.Neighbors,
		Examples:    s.spec.Examples,
	})
	if err != nil {
		return nil, err
	}
	out := make([]dataset.Record, len(in))
	for i, r := range in {
		out[i] = r.Clone()
		out[i].Set(s.spec.TargetField, res.Values[i])
	}
	env.detail(s.Name(), fmt.Sprintf("%d by LLM, %d by k-NN%s", res.LLMCalls, res.KNNDecided, note))
	return out, nil
}

// joinStage fuzzy-joins the input table (left) against a static side
// table (right): the output holds one record per matched pair — the left
// record annotated with the matching right ID.
type joinStage struct{ baseStage }

func (s joinStage) Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error) {
	side := env.Tables[s.spec.Side]
	if len(side) == 0 {
		return nil, fmt.Errorf("stage %q: side table %q is empty or missing", s.Name(), s.spec.Side)
	}
	res, err := env.Engine.Join(ctx, core.JoinRequest{
		Left:              entities(in, s.spec.Field),
		Right:             entities(side, s.spec.Field),
		Strategy:          core.JoinStrategy(s.spec.Strategy),
		CandidateDistance: s.spec.BlockDistance,
	})
	if err != nil {
		return nil, err
	}
	byID := make(map[string]dataset.Record, len(in))
	for _, r := range in {
		byID[r.ID] = r
	}
	field := s.spec.OutField
	if field == "" {
		field = "match"
	}
	out := make([]dataset.Record, 0, len(res.Matches))
	for _, m := range res.Matches {
		r := byID[m.LeftID].Clone()
		r.Set(field, m.RightID)
		out = append(out, r)
	}
	env.detail(s.Name(), fmt.Sprintf("%d matches (%d comparisons, %d skipped by closure, %d by distance)",
		len(res.Matches), res.LLMComparisons, res.SkippedByTransitivity, res.SkippedByDistance))
	return out, nil
}

type sortStage struct{ baseStage }

func (s sortStage) Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error) {
	byText := make(map[string]int, len(in))
	items := renderAll(in, s.spec.Field)
	for i, it := range items {
		if _, dup := byText[it]; dup {
			return nil, fmt.Errorf("stage %q: records %q and %q render identically; sort needs distinct items",
				s.Name(), in[byText[it]].ID, in[i].ID)
		}
		byText[it] = i
	}
	res, err := env.Engine.Sort(ctx, core.SortRequest{
		Items:     items,
		Criterion: s.spec.Criterion,
		Strategy:  core.SortStrategy(s.spec.Strategy),
	})
	if err != nil {
		return nil, err
	}
	out := make([]dataset.Record, 0, len(in))
	placed := make([]bool, len(in))
	for _, it := range res.Ranked {
		i := byText[it]
		out = append(out, in[i])
		placed[i] = true
	}
	// Items a coarse strategy omitted keep their input order at the tail.
	for i, r := range in {
		if !placed[i] {
			out = append(out, r)
		}
	}
	env.detail(s.Name(), fmt.Sprintf("ranked %d (missing %d, hallucinated %d)", len(res.Ranked), res.Missing, res.Hallucinated))
	return out, nil
}

// maxStage passes the table through and records the winning item as the
// stage's scalar output.
type maxStage struct{ baseStage }

func (s maxStage) Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error) {
	res, err := env.Engine.Max(ctx, core.MaxRequest{
		Items:     renderAll(in, s.spec.Field),
		Criterion: s.spec.Criterion,
		Strategy:  core.MaxStrategy(s.spec.Strategy),
	})
	if err != nil {
		return nil, err
	}
	env.setScalar(s.Name(), res.Item)
	env.detail(s.Name(), fmt.Sprintf("%d finalists", len(res.Finalists)))
	return in, nil
}

// countStage passes the table through and records the estimated count as
// the stage's scalar output.
type countStage struct{ baseStage }

func (s countStage) Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error) {
	res, err := env.Engine.Count(ctx, core.CountRequest{
		Items:     renderAll(in, s.spec.Field),
		Predicate: s.spec.Predicate,
		Strategy:  core.CountStrategy(s.spec.Strategy),
	})
	if err != nil {
		return nil, err
	}
	env.setScalar(s.Name(), strconv.Itoa(res.Count))
	env.detail(s.Name(), fmt.Sprintf("%d of %d (%.0f%%)", res.Count, len(in), res.Fraction*100))
	return in, nil
}

// sortedKeys returns map keys in sorted order (deterministic reports).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/resil"
	"repro/internal/workflow"
)

// Stage is one operator node of a compiled pipeline: a thin typed wrapper
// that renders records into the operator's item shape, invokes the engine,
// and folds the result back into a record table.
type Stage interface {
	// Name is the stage's unique identifier from the spec.
	Name() string
	// Kind is the wrapped operator.
	Kind() string
	// Input names the upstream stage ("source" for the root table).
	Input() string
	// Run executes the operator over the input table within env and
	// returns the stage's output table.
	Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error)
}

// Streamer is the optional streaming face of a Stage: a stage that can
// process records in bounded micro-batches (Env's chunk size), emitting
// outputs while its upstream is still producing. The executor streams a
// stage only when CanStream reports true — and never in Materialized
// mode or when the stage takes a dynamic side input.
type Streamer interface {
	// CanStream reports whether the configured strategy keeps each
	// record's outcome independent of which other records share a chunk —
	// the property that makes chunked execution return byte-identical
	// temperature-0 results to a whole-table run.
	CanStream() bool
	// RunStream consumes records from in until it closes, emits output
	// records via emit (which blocks on downstream backpressure), and
	// returns how many input records it consumed.
	RunStream(ctx context.Context, env *Env, in <-chan dataset.Record, emit func(dataset.Record) error) (int, error)
}

// runChunked drives a streaming stage's common loop: assemble bounded
// micro-batches from in, hand each to process, and emit its outputs. The
// width of each chunk comes from the stage's chunker — fixed by default,
// self-tuning under ExecConfig.Adaptive — which observes, along with the
// stage's stats, how long the stage waited for input versus how long
// processing and emission took.
func runChunked(ctx context.Context, env *Env, in <-chan dataset.Record, emit func(dataset.Record) error,
	process func(ctx context.Context, chunk []dataset.Record) ([]dataset.Record, error)) (int, error) {
	consumed := 0
	for {
		start := time.Now()
		chunk, more, err := nextChunk(ctx, in, env.chunk.size())
		wait := time.Since(start)
		if err != nil {
			return consumed, err
		}
		consumed += len(chunk)
		if len(chunk) > 0 {
			work := time.Now()
			out, err := process(ctx, chunk)
			if err != nil {
				if !degradable(env, err) {
					return consumed, err
				}
				// Degraded mode: retry the chunk record by record so one
				// poisoned record costs itself, not its chunk-mates. Healthy
				// records were answered (and cached) during the chunk attempt,
				// so their solo retries are upstream-free.
				out = out[:0]
				for _, r := range chunk {
					solo, err := process(ctx, []dataset.Record{r})
					if err != nil {
						if !degradable(env, err) {
							return consumed, err
						}
						env.dropRecord(env.stats.stage, r, err)
						continue
					}
					out = append(out, solo...)
				}
			}
			for _, r := range out {
				if err := emit(r); err != nil {
					return consumed, err
				}
			}
			service := time.Since(work)
			env.chunk.observe(wait, service, len(chunk))
			env.stats.observe(wait, service, len(chunk))
		}
		if !more {
			return consumed, nil
		}
	}
}

// degradable reports whether a process error may be absorbed by skip or
// quarantine mode. Cancellation, budget exhaustion, and an open circuit
// breaker poison every record, not one — degrading on them would drop
// the whole stream one record at a time.
func degradable(env *Env, err error) bool {
	if env.onErr != OnRecordSkip && env.onErr != OnRecordQuarantine {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, workflow.ErrBudgetExhausted) || errors.Is(err, resil.ErrBreakerOpen) {
		return false
	}
	return true
}

// baseStage carries the shared identity fields.
type baseStage struct{ spec StageSpec }

func (b baseStage) Name() string  { return b.spec.Name }
func (b baseStage) Kind() string  { return b.spec.Kind }
func (b baseStage) Input() string { return b.spec.Input }

// buildStage constructs the concrete stage for a validated spec.
func buildStage(s StageSpec) (Stage, error) {
	base := baseStage{spec: s}
	switch s.Kind {
	case KindFilter:
		return filterStage{base}, nil
	case KindCategorize:
		return categorizeStage{base}, nil
	case KindResolve:
		return resolveStage{base}, nil
	case KindImpute:
		return imputeStage{base}, nil
	case KindJoin:
		return joinStage{base}, nil
	case KindSort:
		return sortStage{base}, nil
	case KindMax:
		return maxStage{base}, nil
	case KindCount:
		return countStage{base}, nil
	}
	return nil, fmt.Errorf("pipeline: unknown kind %q", s.Kind)
}

// render turns a record into the operator's item text: a single field's
// value, or the full serialized record when no field is selected.
func render(r dataset.Record, field string) string {
	if field == "" {
		return r.String()
	}
	v, _ := r.Get(field)
	return v
}

func renderAll(in []dataset.Record, field string) []string {
	out := make([]string, len(in))
	for i, r := range in {
		out[i] = render(r, field)
	}
	return out
}

func entities(in []dataset.Record, field string) []core.Entity {
	out := make([]core.Entity, len(in))
	for i, r := range in {
		out[i] = core.Entity{ID: r.ID, Text: render(r, field)}
	}
	return out
}

type filterStage struct{ baseStage }

// filter runs the predicate over one table (or chunk) and returns the
// surviving records plus the model samples spent.
func (s filterStage) filter(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, int, error) {
	res, err := env.Engine.Filter(ctx, core.FilterRequest{
		Items:     renderAll(in, s.spec.Field),
		Predicate: s.spec.Predicate,
		Strategy:  core.FilterStrategy(s.spec.Strategy),
	})
	if err != nil {
		return nil, 0, err
	}
	var out []dataset.Record
	for i, keep := range res.Keep {
		if keep {
			out = append(out, in[i])
		}
	}
	return out, res.Asks, nil
}

// filterDetail is the one report string for a filter's work, shared by
// the table path, the streaming path, and the adaptive segment runner so
// the three never drift apart.
func filterDetail(kept, seen, asks int) string {
	return fmt.Sprintf("kept %d/%d (%d asks)", kept, seen, asks)
}

// detailSkippedEmpty marks a stage that saw no input records.
const detailSkippedEmpty = "skipped: empty input"

func (s filterStage) Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error) {
	out, asks, err := s.filter(ctx, env, in)
	if err != nil {
		return nil, err
	}
	env.detail(s.Name(), filterDetail(len(out), len(in), asks))
	return out, nil
}

// CanStream implements Streamer: every filter policy decides per item.
func (s filterStage) CanStream() bool { return true }

func (s filterStage) RunStream(ctx context.Context, env *Env, in <-chan dataset.Record, emit func(dataset.Record) error) (int, error) {
	var kept, asks int
	consumed, err := runChunked(ctx, env, in, emit, func(ctx context.Context, chunk []dataset.Record) ([]dataset.Record, error) {
		out, a, err := s.filter(ctx, env, chunk)
		if err != nil {
			return nil, err
		}
		kept += len(out)
		asks += a
		return out, nil
	})
	if err != nil {
		return consumed, err
	}
	if consumed > 0 {
		env.detail(s.Name(), filterDetail(kept, consumed, asks))
	}
	return consumed, nil
}

type categorizeStage struct{ baseStage }

// categorize assigns one table (or chunk) and returns the annotated
// records plus the category count the operator reported.
func (s categorizeStage) categorize(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, int, error) {
	res, err := env.Engine.Categorize(ctx, core.CategorizeRequest{
		Items:      renderAll(in, s.spec.Field),
		Categories: s.spec.Categories,
		Strategy:   core.CategorizeStrategy(s.spec.Strategy),
	})
	if err != nil {
		return nil, 0, err
	}
	field := s.spec.OutField
	if field == "" {
		field = "category"
	}
	out := make([]dataset.Record, len(in))
	for i, r := range in {
		out[i] = r.Clone()
		out[i].Set(field, res.Assignments[i])
	}
	return out, len(res.Categories), nil
}

func (s categorizeStage) Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error) {
	out, categories, err := s.categorize(ctx, env, in)
	if err != nil {
		return nil, err
	}
	env.detail(s.Name(), fmt.Sprintf("%d categories", categories))
	return out, nil
}

// CanStream implements Streamer: direct assignment against a closed
// category set is per-record; two-phase discovers the set from the whole
// table, so chunk membership would change it.
func (s categorizeStage) CanStream() bool {
	return s.spec.Strategy != string(core.CategorizeTwoPhase)
}

func (s categorizeStage) RunStream(ctx context.Context, env *Env, in <-chan dataset.Record, emit func(dataset.Record) error) (int, error) {
	categories := 0
	consumed, err := runChunked(ctx, env, in, emit, func(ctx context.Context, chunk []dataset.Record) ([]dataset.Record, error) {
		out, c, err := s.categorize(ctx, env, chunk)
		if err != nil {
			return nil, err
		}
		categories = c
		return out, nil
	})
	if err != nil {
		return consumed, err
	}
	if consumed > 0 {
		env.detail(s.Name(), fmt.Sprintf("%d categories", categories))
	}
	return consumed, nil
}

// resolveStage deduplicates the table: records the engine judges to refer
// to one entity collapse to a single representative — deterministically
// the member with the lexicographically smallest ID — preserving input
// order.
type resolveStage struct{ baseStage }

func (s resolveStage) Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error) {
	seen := make(map[string]bool, len(in))
	for _, r := range in {
		if seen[r.ID] {
			return nil, fmt.Errorf("stage %q: duplicate record ID %q", s.Name(), r.ID)
		}
		seen[r.ID] = true
	}
	res, err := env.Engine.Dedupe(ctx, core.DedupeRequest{
		Records:       entities(in, s.spec.Field),
		Strategy:      core.DedupeStrategy(s.spec.Strategy),
		BlockDistance: s.spec.BlockDistance,
	})
	if err != nil {
		return nil, err
	}
	keep := make(map[string]bool, len(res.Groups))
	for _, g := range res.Groups {
		rep := g[0]
		for _, id := range g[1:] {
			if id < rep {
				rep = id
			}
		}
		keep[rep] = true
	}
	var out []dataset.Record
	for _, r := range in {
		if keep[r.ID] {
			out = append(out, r)
		}
	}
	env.detail(s.Name(), fmt.Sprintf("%d records -> %d entities (%d comparisons)", len(in), len(out), res.LLMComparisons))
	return out, nil
}

type imputeStage struct{ baseStage }

func (s imputeStage) Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error) {
	side := s.spec.Side
	if side == "" {
		side = "train"
	}
	train := env.Tables[side]
	if len(train) == 0 {
		return nil, fmt.Errorf("stage %q: side table %q is empty or missing", s.Name(), side)
	}
	strategy := s.spec.Strategy
	note := ""
	if strategy == "auto" {
		// Per-stage planning under the whole-pipeline budget: profile the
		// impute strategies on held-out training records and pick under
		// whatever dollar headroom the shared budget still has. An
		// exhausted cap must stay a cap — PlanStrategies reads
		// maxDollars <= 0 as unlimited, so clamp to the smallest positive
		// budget instead: only free strategies fit, everything else falls
		// through to the cheapest-overall rule.
		maxDollars := 0.0
		if rem, capped := env.Budget.RemainingDollars(); capped {
			maxDollars = rem
			if maxDollars <= 0 {
				maxDollars = math.SmallestNonzeroFloat64
			}
		}
		holdout := len(train) / 4
		if holdout < 1 {
			holdout = 1
		}
		if holdout >= len(train) {
			return nil, fmt.Errorf("stage %q: %d training records are too few to plan over", s.Name(), len(train))
		}
		target := s.spec.TargetAccuracy
		if target == 0 {
			target = 0.8
		}
		plan, err := env.Engine.PlanImpute(ctx, train, s.spec.TargetField,
			[]core.ImputeStrategy{core.ImputeKNN, core.ImputeLLM, core.ImputeHybrid},
			holdout, s.spec.Examples, target, maxDollars, len(in))
		if err != nil {
			return nil, fmt.Errorf("stage %q: planning: %w", s.Name(), err)
		}
		strategy = plan.Chosen
		note = fmt.Sprintf("; planner chose %q (%s)", plan.Chosen, plan.Reason)
	}
	out, llmCalls, knnDecided, err := s.impute(ctx, env, in, train, strategy)
	if err != nil {
		return nil, err
	}
	env.detail(s.Name(), fmt.Sprintf("%d by LLM, %d by k-NN%s", llmCalls, knnDecided, note))
	return out, nil
}

// impute fills the target field for one table (or chunk) of query
// records against the resolved training table.
func (s imputeStage) impute(ctx context.Context, env *Env, in, train []dataset.Record, strategy string) ([]dataset.Record, int, int, error) {
	res, err := env.Engine.Impute(ctx, core.ImputeRequest{
		Train:       train,
		Queries:     in,
		TargetField: s.spec.TargetField,
		Strategy:    core.ImputeStrategy(strategy),
		Neighbors:   s.spec.Neighbors,
		Examples:    s.spec.Examples,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	out := make([]dataset.Record, len(in))
	for i, r := range in {
		out[i] = r.Clone()
		out[i].Set(s.spec.TargetField, res.Values[i])
	}
	return out, res.LLMCalls, res.KNNDecided, nil
}

// CanStream implements Streamer: a fixed strategy answers per query
// record from the static training table. Strategy "auto" is a barrier —
// the planner's projected costs scale with the query-table size, so it
// must see the whole table (the same reason it blocks filter pushdown).
func (s imputeStage) CanStream() bool { return s.spec.Strategy != "auto" }

func (s imputeStage) RunStream(ctx context.Context, env *Env, in <-chan dataset.Record, emit func(dataset.Record) error) (int, error) {
	side := s.spec.Side
	if side == "" {
		side = "train"
	}
	train := env.Tables[side]
	if len(train) == 0 {
		return 0, fmt.Errorf("stage %q: side table %q is empty or missing", s.Name(), side)
	}
	var llmCalls, knnDecided int
	consumed, err := runChunked(ctx, env, in, emit, func(ctx context.Context, chunk []dataset.Record) ([]dataset.Record, error) {
		out, llm, knn, err := s.impute(ctx, env, chunk, train, s.spec.Strategy)
		if err != nil {
			return nil, err
		}
		llmCalls += llm
		knnDecided += knn
		return out, nil
	})
	if err != nil {
		return consumed, err
	}
	if consumed > 0 {
		env.detail(s.Name(), fmt.Sprintf("%d by LLM, %d by k-NN", llmCalls, knnDecided))
	}
	return consumed, nil
}

// joinStage fuzzy-joins the input table (left) against a static side
// table (right): the output holds one record per matched pair — the left
// record annotated with the matching right ID.
type joinStage struct{ baseStage }

// join matches one table (or chunk) of left records against the resolved
// right side and returns annotated matches plus the comparison stats.
// Output rows are ordered by the left record's input position (then
// right ID) — not by the engine's global LeftID sort — so a chunked run
// concatenates to exactly the whole-table result.
func (s joinStage) join(ctx context.Context, env *Env, in, side []dataset.Record) ([]dataset.Record, core.JoinResult, error) {
	res, err := env.Engine.Join(ctx, core.JoinRequest{
		Left:              entities(in, s.spec.Field),
		Right:             entities(side, s.spec.Field),
		Strategy:          core.JoinStrategy(s.spec.Strategy),
		CandidateDistance: s.spec.BlockDistance,
	})
	if err != nil {
		return nil, core.JoinResult{}, err
	}
	byID := make(map[string]dataset.Record, len(in))
	pos := make(map[string]int, len(in))
	for i, r := range in {
		byID[r.ID] = r
		pos[r.ID] = i
	}
	field := s.spec.OutField
	if field == "" {
		field = "match"
	}
	matches := append([]core.JoinPair(nil), res.Matches...)
	sort.Slice(matches, func(i, j int) bool {
		if pos[matches[i].LeftID] != pos[matches[j].LeftID] {
			return pos[matches[i].LeftID] < pos[matches[j].LeftID]
		}
		return matches[i].RightID < matches[j].RightID
	})
	out := make([]dataset.Record, 0, len(matches))
	for _, m := range matches {
		r := byID[m.LeftID].Clone()
		r.Set(field, m.RightID)
		out = append(out, r)
	}
	return out, res, nil
}

func (s joinStage) Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error) {
	side := env.Tables[s.spec.Side]
	if len(side) == 0 {
		return nil, fmt.Errorf("stage %q: side table %q is empty or missing", s.Name(), s.spec.Side)
	}
	out, res, err := s.join(ctx, env, in, side)
	if err != nil {
		return nil, err
	}
	env.detail(s.Name(), fmt.Sprintf("%d matches (%d comparisons, %d skipped by closure, %d by distance)",
		len(res.Matches), res.LLMComparisons, res.SkippedByTransitivity, res.SkippedByDistance))
	return out, nil
}

// CanStream implements Streamer: nested-loop matches each left record
// against the static right side independently. The transitive strategy
// reuses closure evidence across left records, so chunking would change
// which comparisons it skips.
func (s joinStage) CanStream() bool {
	return s.spec.Strategy == string(core.JoinNestedLoop)
}

func (s joinStage) RunStream(ctx context.Context, env *Env, in <-chan dataset.Record, emit func(dataset.Record) error) (int, error) {
	side := env.Tables[s.spec.Side]
	if len(side) == 0 {
		return 0, fmt.Errorf("stage %q: side table %q is empty or missing", s.Name(), s.spec.Side)
	}
	var matches, comparisons, byClosure, byDistance int
	consumed, err := runChunked(ctx, env, in, emit, func(ctx context.Context, chunk []dataset.Record) ([]dataset.Record, error) {
		out, res, err := s.join(ctx, env, chunk, side)
		if err != nil {
			return nil, err
		}
		matches += len(res.Matches)
		comparisons += res.LLMComparisons
		byClosure += res.SkippedByTransitivity
		byDistance += res.SkippedByDistance
		return out, nil
	})
	if err != nil {
		return consumed, err
	}
	if consumed > 0 {
		env.detail(s.Name(), fmt.Sprintf("%d matches (%d comparisons, %d skipped by closure, %d by distance)",
			matches, comparisons, byClosure, byDistance))
	}
	return consumed, nil
}

type sortStage struct{ baseStage }

func (s sortStage) Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error) {
	byText := make(map[string]int, len(in))
	items := renderAll(in, s.spec.Field)
	for i, it := range items {
		if _, dup := byText[it]; dup {
			return nil, fmt.Errorf("stage %q: records %q and %q render identically; sort needs distinct items",
				s.Name(), in[byText[it]].ID, in[i].ID)
		}
		byText[it] = i
	}
	res, err := env.Engine.Sort(ctx, core.SortRequest{
		Items:     items,
		Criterion: s.spec.Criterion,
		Strategy:  core.SortStrategy(s.spec.Strategy),
	})
	if err != nil {
		return nil, err
	}
	out := make([]dataset.Record, 0, len(in))
	placed := make([]bool, len(in))
	for _, it := range res.Ranked {
		i := byText[it]
		out = append(out, in[i])
		placed[i] = true
	}
	// Items a coarse strategy omitted keep their input order at the tail.
	for i, r := range in {
		if !placed[i] {
			out = append(out, r)
		}
	}
	env.detail(s.Name(), fmt.Sprintf("ranked %d (missing %d, hallucinated %d)", len(res.Ranked), res.Missing, res.Hallucinated))
	return out, nil
}

// maxStage passes the table through and records the winning item as the
// stage's scalar output.
type maxStage struct{ baseStage }

func (s maxStage) Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error) {
	res, err := env.Engine.Max(ctx, core.MaxRequest{
		Items:     renderAll(in, s.spec.Field),
		Criterion: s.spec.Criterion,
		Strategy:  core.MaxStrategy(s.spec.Strategy),
	})
	if err != nil {
		return nil, err
	}
	env.setScalar(s.Name(), res.Item)
	env.detail(s.Name(), fmt.Sprintf("%d finalists", len(res.Finalists)))
	return in, nil
}

// countStage passes the table through and records the estimated count as
// the stage's scalar output.
type countStage struct{ baseStage }

func (s countStage) Run(ctx context.Context, env *Env, in []dataset.Record) ([]dataset.Record, error) {
	res, err := env.Engine.Count(ctx, core.CountRequest{
		Items:     renderAll(in, s.spec.Field),
		Predicate: s.spec.Predicate,
		Strategy:  core.CountStrategy(s.spec.Strategy),
	})
	if err != nil {
		return nil, err
	}
	env.setScalar(s.Name(), strconv.Itoa(res.Count))
	env.detail(s.Name(), fmt.Sprintf("%d of %d (%.0f%%)", res.Count, len(in), res.Fraction*100))
	return in, nil
}

// sortedKeys returns map keys in sorted order (deterministic reports).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package pipeline

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/llm"
)

// feedRecords hands the given waves to a fresh feed channel from a
// background goroutine and closes it when done, so the run under test
// genuinely receives records while it is already executing.
func feedRecords(waves ...[]dataset.Record) <-chan dataset.Record {
	feed := make(chan dataset.Record)
	go func() {
		defer close(feed)
		for _, wave := range waves {
			for _, r := range wave {
				feed <- r
			}
		}
	}()
	return feed
}

// TestStandingQueryMatchesBatch is the standing-query acceptance pin:
// records ingested mid-run through ExecConfig.Feed must leave every
// table, scalar, and detail byte-identical to a batch run whose source
// table already held the full record set — across streaming, adaptive
// (self-tuned chunks and filter segments), and materialized execution.
func TestStandingQueryMatchesBatch(t *testing.T) {
	model := llm.Func{ModelName: "standing", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		switch {
		case strings.Contains(req.Prompt, "tightpred"):
			// Keeps only the two chocolate flavors, wherever they arrive.
			if strings.Contains(req.Prompt, "chocolate chip") {
				return unit("Yes"), nil
			}
			return unit("No"), nil
		case strings.Contains(req.Prompt, "Assign the following item"):
			if strings.Contains(req.Prompt, "lemon") {
				return unit("citrus"), nil
			}
			return unit("other"), nil
		}
		return unit("Yes"), nil
	}}
	spec := Spec{Stages: []StageSpec{
		{Name: "loose", Kind: KindFilter, Field: "name", Predicate: "loosepred"},
		{Name: "tight", Kind: KindFilter, Field: "name", Predicate: "tightpred"},
		{Name: "cat", Kind: KindCategorize, Field: "name", Categories: []string{"citrus", "other"}},
		{Name: "tally", Kind: KindCount, Field: "name", Predicate: "loosepred", Strategy: "per-item"},
	}}

	all := flavorTables(12)["source"]
	static, fed := all[:5], all[5:]

	// exact compares every table, scalar, and stage report byte for byte.
	// The self-tuned adaptive configuration compares final outputs only:
	// its chunk widths (and with them the segment's internal order
	// revisions) depend on wall-clock timing, so intra-segment tables may
	// legitimately differ between two runs — the segment tail and
	// everything downstream may not. Pinning Chunk keeps the adaptive
	// runtime's segments while making the whole report deterministic.
	configs := []struct {
		name  string
		cfg   ExecConfig
		exact bool
	}{
		{"streaming", ExecConfig{Chunk: 2, Parallelism: 2}, true},
		{"adaptive-pinned-chunk", ExecConfig{Adaptive: true, Chunk: 1, Parallelism: 2}, true},
		{"adaptive-selftuned", ExecConfig{Adaptive: true, Parallelism: 2}, false},
		{"materialized", ExecConfig{Materialized: true, Parallelism: 2}, true},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			batchP, err := Compile(spec)
			if err != nil {
				t.Fatal(err)
			}
			batchCfg := tc.cfg
			batchCfg.Model = model
			batch, err := batchP.Run(context.Background(), batchCfg,
				map[string][]dataset.Record{"source": all})
			if err != nil {
				t.Fatal(err)
			}

			standP, err := Compile(spec)
			if err != nil {
				t.Fatal(err)
			}
			standCfg := tc.cfg
			standCfg.Model = model
			standCfg.Feed = feedRecords(fed[:3], fed[3:])
			standing, err := standP.Run(context.Background(), standCfg,
				map[string][]dataset.Record{"source": static})
			if err != nil {
				t.Fatal(err)
			}

			if tc.exact {
				if !reflect.DeepEqual(batch.Tables, standing.Tables) {
					t.Fatalf("standing-query tables differ from batch run:\nbatch    %v\nstanding %v",
						batch.Tables, standing.Tables)
				}
				for i, s := range batch.Stages {
					o := standing.Stages[i]
					if s.Name != o.Name || s.In != o.In || s.Out != o.Out || s.Detail != o.Detail {
						t.Fatalf("stage %q report differs: batch {in %d out %d %q} vs standing {in %d out %d %q}",
							s.Name, s.In, s.Out, s.Detail, o.In, o.Out, o.Detail)
					}
				}
			} else {
				for _, name := range []string{"tight", "cat", "tally"} {
					if !reflect.DeepEqual(batch.Tables[name], standing.Tables[name]) {
						t.Fatalf("standing-query table %q differs from batch run:\nbatch    %v\nstanding %v",
							name, batch.Tables[name], standing.Tables[name])
					}
				}
			}
			if !reflect.DeepEqual(batch.Scalars, standing.Scalars) {
				t.Fatalf("standing-query scalars differ from batch run: %v vs %v",
					batch.Scalars, standing.Scalars)
			}
			if got := len(standing.Tables["cat"]); got != 2 {
				t.Fatalf("standing query kept %d records, want 2", got)
			}
		})
	}
}

// TestStandingQueryEmptySource runs a standing query whose static source
// table is empty: every record arrives through the feed, and the result
// still matches a batch run over the fed records alone.
func TestStandingQueryEmptySource(t *testing.T) {
	model := llm.Func{ModelName: "standing", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return unit("Yes"), nil
	}}
	spec := Spec{Stages: []StageSpec{
		{Name: "keep", Kind: KindFilter, Field: "name", Predicate: "p"},
	}}
	fed := flavorTables(6)["source"]

	batchP, _ := Compile(spec)
	batch, err := batchP.Run(context.Background(), ExecConfig{Model: model, Chunk: 1},
		map[string][]dataset.Record{"source": fed})
	if err != nil {
		t.Fatal(err)
	}
	standP, _ := Compile(spec)
	standing, err := standP.Run(context.Background(),
		ExecConfig{Model: model, Chunk: 1, Feed: feedRecords(fed)},
		map[string][]dataset.Record{"source": nil})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch.Tables["keep"], standing.Tables["keep"]) {
		t.Fatalf("empty-source standing query differs from batch: %v vs %v",
			batch.Tables["keep"], standing.Tables["keep"])
	}
}

// TestStandingQueryCancellation cancels a run whose feed never closes:
// Run must return the cancellation instead of blocking forever, and the
// feeding goroutine must not leak (it selects on the context).
func TestStandingQueryCancellation(t *testing.T) {
	model := llm.Func{ModelName: "standing", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return unit("Yes"), nil
	}}
	spec := Spec{Stages: []StageSpec{
		{Name: "keep", Kind: KindFilter, Field: "name", Predicate: "p"},
	}}
	feed := make(chan dataset.Record) // never fed, never closed
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		p, _ := Compile(spec)
		_, err := p.Run(ctx, ExecConfig{Model: model, Chunk: 1, Feed: feed}, flavorTables(3))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled standing query reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled standing query never returned")
	}
}

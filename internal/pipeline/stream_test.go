package pipeline

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/token"
	"repro/internal/workflow"
)

// unit is a one-token reply for deterministic test models.
func unit(text string) llm.Response {
	return llm.Response{Text: text, Model: "test", Usage: token.Usage{PromptTokens: 1, CompletionTokens: 1, Calls: 1}}
}

// TestStreamingOverlapsStages proves record-level streaming: with a
// chunk size of 1, the categorize stage must process the first record
// while the upstream filter is still working through later ones. The
// model blocks the filter's last record until a categorize call has
// arrived — a materialized executor, which runs categorize only after
// the filter returns its whole table, would deadlock here.
func TestStreamingOverlapsStages(t *testing.T) {
	release := make(chan struct{})
	var categorized atomic.Int32
	model := llm.Func{ModelName: "overlap", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		switch {
		case strings.Contains(req.Prompt, "Assign the following item"):
			if categorized.Add(1) == 1 {
				close(release)
			}
			return unit("a"), nil
		case strings.Contains(req.Prompt, "satisfy the condition") &&
			strings.Contains(req.Prompt, dataset.FlavorNames()[3]):
			select {
			case <-release:
			case <-time.After(10 * time.Second):
				t.Error("filter's last record ran before any categorize call: stages did not overlap")
			case <-ctx.Done():
				return llm.Response{}, ctx.Err()
			}
			return unit("Yes"), nil
		default:
			return unit("Yes"), nil
		}
	}}
	spec := Spec{Stages: []StageSpec{
		{Name: "keep", Kind: KindFilter, Field: "", Predicate: "p"},
		{Name: "cat", Kind: KindCategorize, Categories: []string{"a", "b"}},
	}}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background(), ExecConfig{Model: model, Chunk: 1, Parallelism: 1}, flavorTables(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables["cat"]) != 4 {
		t.Fatalf("cat table has %d records, want 4", len(res.Tables["cat"]))
	}
}

// TestStreamingMatchesMaterialized pins the tentpole equivalence: a
// streaming run returns byte-identical tables, scalars, and details to a
// materialized run of the same spec at temperature 0, across streaming
// (filter, categorize, impute) and barrier (resolve, count) stages.
func TestStreamingMatchesMaterialized(t *testing.T) {
	tables, _ := SourceSpec{Dataset: "restaurants", Records: 12, Train: 30, Seed: 3}.Tables()
	for i, r := range tables["source"] {
		tables["source"][i] = r.WithoutField("city")
	}
	spec := Spec{Stages: []StageSpec{
		{Name: "entities", Kind: KindResolve, Strategy: "pairwise", InvariantFields: []string{"type"}},
		{Name: "cuisine", Kind: KindFilter, Field: "type", Predicate: "the restaurant serves food", Selectivity: 0.9},
		{Name: "city", Kind: KindImpute, TargetField: "city", Side: "train", Strategy: "hybrid", Neighbors: 3, Examples: 2},
		{Name: "n", Kind: KindCount, Field: "city", Predicate: "q", Strategy: "per-item"},
	}}
	runWith := func(materialized bool, chunk int) *Result {
		t.Helper()
		p, err := Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(context.Background(), ExecConfig{
			Model: sim.NewNamed("sim-gpt-3.5-turbo"), Materialized: materialized, Chunk: chunk,
		}, tables)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := runWith(true, 0)
	for _, chunk := range []int{1, 3, 64} {
		got := runWith(false, chunk)
		if !reflect.DeepEqual(want.Tables, got.Tables) {
			t.Fatalf("chunk %d: streaming tables differ from materialized", chunk)
		}
		if !reflect.DeepEqual(want.Scalars, got.Scalars) {
			t.Fatalf("chunk %d: streaming scalars %v != materialized %v", chunk, got.Scalars, want.Scalars)
		}
		for i := range want.Stages {
			if want.Stages[i].Detail != got.Stages[i].Detail {
				t.Fatalf("chunk %d: stage %q detail %q != %q",
					chunk, want.Stages[i].Name, got.Stages[i].Detail, want.Stages[i].Detail)
			}
			if want.Stages[i].In != got.Stages[i].In || want.Stages[i].Out != got.Stages[i].Out {
				t.Fatalf("chunk %d: stage %q in/out %d/%d != %d/%d", chunk, want.Stages[i].Name,
					got.Stages[i].In, got.Stages[i].Out, want.Stages[i].In, want.Stages[i].Out)
			}
		}
	}
}

// TestStreamingCancellationNoLeak is the mid-stream failure contract: a
// stage erroring partway through a stream must close downstream
// channels, surface its own error as the run's root cause (not a
// sibling's cancellation), and leave no goroutine behind. Run with
// -race in CI.
func TestStreamingCancellationNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	model := llm.Func{ModelName: "poison", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		if strings.Contains(req.Prompt, dataset.FlavorNames()[2]) && strings.Contains(req.Prompt, "satisfy the condition") {
			return llm.Response{}, fmt.Errorf("mid-stream explosion")
		}
		if strings.Contains(req.Prompt, "Assign the following item") {
			// Downstream runs records the filter already emitted; it must
			// die of the cancellation, not block forever.
			<-ctx.Done()
			return llm.Response{}, ctx.Err()
		}
		return unit("Yes"), nil
	}}
	spec := Spec{Stages: []StageSpec{
		{Name: "keep", Kind: KindFilter, Predicate: "p"},
		{Name: "cat", Kind: KindCategorize, Categories: []string{"a"}},
		{Name: "rank", Kind: KindSort, Field: "name", Criterion: "c", Strategy: "rating"},
	}}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(context.Background(), ExecConfig{Model: model, Chunk: 1, Parallelism: 1}, flavorTables(6))
	if err == nil || !strings.Contains(err.Error(), "mid-stream explosion") || !strings.Contains(err.Error(), `"keep"`) {
		t.Fatalf("err = %v, want the failing stage's root cause", err)
	}
	// Every stage goroutine, feeder, and operator worker must have exited;
	// allow the runtime a moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before run, %d after\n%s", before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamingJoinOrderMatchesMaterialized: the engine's Join sorts
// matches by LeftID globally, which a chunked run cannot reproduce — so
// the join stage orders its output by input position instead, and a
// streamed nested-loop join over non-ID-ordered input must concatenate
// to exactly the materialized table.
func TestStreamingJoinOrderMatchesMaterialized(t *testing.T) {
	model := llm.Func{ModelName: "match-all", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return unit("Yes"), nil
	}}
	// Left IDs deliberately in descending order.
	var left []dataset.Record
	for _, id := range []string{"z9", "m5", "a1"} {
		left = append(left, dataset.Record{ID: id, Fields: []dataset.Field{{Name: "name", Value: "item " + id}}})
	}
	right := []dataset.Record{
		{ID: "r2", Fields: []dataset.Field{{Name: "name", Value: "side two"}}},
		{ID: "r1", Fields: []dataset.Field{{Name: "name", Value: "side one"}}},
	}
	tables := map[string][]dataset.Record{"source": left, "right": right}
	spec := Spec{Stages: []StageSpec{
		{Name: "match", Kind: KindJoin, Field: "name", Side: "right", Strategy: "nested-loop"},
	}}
	run := func(materialized bool) []dataset.Record {
		t.Helper()
		p, err := Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(context.Background(), ExecConfig{Model: model, Materialized: materialized, Chunk: 1}, tables)
		if err != nil {
			t.Fatal(err)
		}
		return res.Tables["match"]
	}
	want, got := run(true), run(false)
	if len(want) != 6 {
		t.Fatalf("materialized join has %d rows, want 3x2", len(want))
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("streaming join order differs:\nmaterialized %v\nstreaming    %v", want, got)
	}
	// Input position, not ID order, dictates the output.
	if id := want[0].ID; id != "z9" {
		t.Fatalf("first joined row is %q, want the first input record", id)
	}
}

// TestOuterCancellationIsNotSuccess: cancelling the caller's context
// mid-run must surface an error, never a silently truncated Result —
// even when no stage itself failed.
func TestOuterCancellationIsNotSuccess(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int32
	model := llm.Func{ModelName: "cancel", Fn: func(_ context.Context, req llm.Request) (llm.Response, error) {
		if calls.Add(1) == 1 {
			cancel()
		}
		return unit("Yes"), nil
	}}
	spec := Spec{Stages: []StageSpec{
		{Name: "keep", Kind: KindFilter, Predicate: "p"},
	}}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(ctx, ExecConfig{Model: model, Chunk: 1, Parallelism: 1}, flavorTables(6))
	if err == nil {
		t.Fatalf("cancelled run reported success with %d/6 records", len(res.Tables["keep"]))
	}
}

// TestDynamicSideInput: a join whose right side is an earlier stage's
// output must see that stage's complete table — equivalently to running
// the producing stage first and passing its output as a static table.
func TestDynamicSideInput(t *testing.T) {
	// Two filters split the source into disjoint halves (join inputs must
	// not share IDs); the join's right side is the "evens" stage's output.
	names := dataset.FlavorNames()
	model := llm.Func{ModelName: "split", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		if strings.Contains(req.Prompt, "satisfy the condition") {
			idx := -1
			for i, n := range names[:8] {
				if strings.Contains(req.Prompt, n) {
					idx = i
					break
				}
			}
			keepEven := strings.Contains(req.Prompt, "evenpred")
			if idx >= 0 && (idx%2 == 0) == keepEven {
				return unit("Yes"), nil
			}
			return unit("No"), nil
		}
		return unit("Yes"), nil // every cross pair matches
	}}
	tables := flavorTables(8)
	spec := Spec{Stages: []StageSpec{
		{Name: "evens", Kind: KindFilter, Field: "name", Predicate: "evenpred", Input: "source"},
		{Name: "odds", Kind: KindFilter, Field: "name", Predicate: "oddpred", Input: "source"},
		{Name: "match", Kind: KindJoin, Field: "name", Side: "evens", Strategy: "nested-loop", Input: "odds"},
	}}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background(), ExecConfig{Model: model}, tables)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables["evens"]) != 4 || len(res.Tables["odds"]) != 4 {
		t.Fatalf("split tables: %d evens, %d odds, want 4/4", len(res.Tables["evens"]), len(res.Tables["odds"]))
	}

	// Reference: the same join against the evens table passed statically.
	refSpec := Spec{Stages: []StageSpec{
		{Name: "odds", Kind: KindFilter, Field: "name", Predicate: "oddpred", Input: "source"},
		{Name: "match", Kind: KindJoin, Field: "name", Side: "right", Strategy: "nested-loop", Input: "odds"},
	}}
	refTables := map[string][]dataset.Record{"source": tables["source"], "right": res.Tables["evens"]}
	rp, err := Compile(refSpec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rp.Run(context.Background(), ExecConfig{Model: model}, refTables)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables["match"]) != 16 {
		t.Fatalf("match table has %d records, want 4x4 cross pairs", len(res.Tables["match"]))
	}
	if !reflect.DeepEqual(res.Tables["match"], ref.Tables["match"]) {
		t.Fatalf("dynamic side join %v != static side join %v", res.Tables["match"], ref.Tables["match"])
	}
}

// TestDynamicSideInputImpute: an impute stage drawing its example pool
// from an earlier stage's output instead of a static table — the pool is
// the source table passed through a filter, and the imputation must
// match running against that filtered table statically.
func TestDynamicSideInputImpute(t *testing.T) {
	tables, _ := SourceSpec{Dataset: "restaurants", Records: 8, Train: 24, Seed: 5}.Tables()
	// Main chain: the training records themselves; the impute stage
	// re-derives each record's city from the filtered pool (k-NN only, so
	// the run is deterministic and free).
	src := map[string][]dataset.Record{"source": tables["train"]}
	model := llm.Func{ModelName: "yes", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return unit("Yes"), nil
	}}
	spec := Spec{Stages: []StageSpec{
		{Name: "pool", Kind: KindFilter, Field: "type", Predicate: "p", Input: "source"},
		{Name: "city", Kind: KindImpute, TargetField: "city", Side: "pool", Strategy: "knn",
			Neighbors: 3, Input: "source"},
	}}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background(), ExecConfig{Model: model}, src)
	if err != nil {
		t.Fatal(err)
	}

	ref := Spec{Stages: []StageSpec{
		{Name: "city", Kind: KindImpute, TargetField: "city", Side: "train", Strategy: "knn",
			Neighbors: 3, Input: "source"},
	}}
	rp, err := Compile(ref)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := rp.Run(context.Background(), ExecConfig{Model: model},
		map[string][]dataset.Record{"source": src["source"], "train": res.Tables["pool"]})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables["pool"]) == 0 {
		t.Fatal("filter kept nothing; pool is vacuous")
	}
	if !reflect.DeepEqual(res.Tables["city"], refRes.Tables["city"]) {
		t.Fatal("dynamic-side imputation differs from static-side imputation over the same pool")
	}
}

// TestSideStageValidation pins the compile-time rules for dynamic side
// inputs: a side naming a later stage (or the stage itself) is rejected;
// a side naming an earlier stage compiles.
func TestSideStageValidation(t *testing.T) {
	earlier := Spec{Stages: []StageSpec{
		{Name: "pool", Kind: KindFilter, Predicate: "p", Input: "source"},
		{Name: "match", Kind: KindJoin, Side: "pool", Strategy: "nested-loop", Input: "source"},
	}}
	if _, err := Compile(earlier); err != nil {
		t.Fatalf("side naming an earlier stage rejected: %v", err)
	}
	self := Spec{Stages: []StageSpec{
		{Name: "match", Kind: KindJoin, Side: "match", Input: "source"},
	}}
	if _, err := Compile(self); err == nil {
		t.Fatal("self-referential side accepted")
	}
	later := Spec{Stages: []StageSpec{
		{Name: "match", Kind: KindJoin, Side: "pool", Input: "source"},
		{Name: "pool", Kind: KindFilter, Predicate: "p", Input: "source"},
	}}
	if _, err := Compile(later); err == nil {
		t.Fatal("forward side reference accepted")
	}
}

// TestOptimizeRespectsSideConsumers: a stage whose output feeds another
// stage's side table has a second consumer, so a filter must not cross
// it — the side consumer needs the unfiltered table.
func TestOptimizeRespectsSideConsumers(t *testing.T) {
	names, log := optimizeOrder(t, []StageSpec{
		{Name: "cat", Kind: KindCategorize, Categories: []string{"x"}, OutField: "cat", Input: "source"},
		{Name: "f", Kind: KindFilter, Field: "name", Predicate: "p", Input: "cat"},
		{Name: "match", Kind: KindJoin, Side: "cat", Strategy: "nested-loop", Input: "f"},
	})
	if names[0] != "cat" || len(log) != 0 {
		t.Fatalf("filter crossed a stage with a side consumer: %v (%v)", names, log)
	}
}

// TestReservedStageNames: "__"-prefixed names collide with executor
// internals (the probe attribution label) and are rejected.
func TestReservedStageNames(t *testing.T) {
	_, err := Compile(Spec{Stages: []StageSpec{
		{Name: "__probe", Kind: KindFilter, Predicate: "p"},
	}})
	if err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("reserved name accepted: %v", err)
	}
}

// TestSelectivityValidation pins the Compile-time boundary behaviour of
// the selectivity hint: 0 means unset, (0, 1] is a hint, and everything
// else — including NaN, which the old check silently let through to the
// runtime 0.5 default — is a clear error.
func TestSelectivityValidation(t *testing.T) {
	filterWith := func(sel float64) Spec {
		return Spec{Stages: []StageSpec{
			{Name: "f", Kind: KindFilter, Predicate: "p", Selectivity: sel},
		}}
	}
	for _, sel := range []float64{0, 1e-9, 0.5, 1} {
		if _, err := Compile(filterWith(sel)); err != nil {
			t.Errorf("selectivity %v rejected: %v", sel, err)
		}
	}
	nan := math_NaN()
	for _, sel := range []float64{-0.1, -1e-9, 1.0000001, 2, nan} {
		if _, err := Compile(filterWith(sel)); err == nil || !strings.Contains(err.Error(), "selectivity") {
			t.Errorf("selectivity %v accepted (err = %v)", sel, err)
		}
	}
	// The hint is meaningless on non-filter stages.
	onCount := Spec{Stages: []StageSpec{
		{Name: "n", Kind: KindCount, Predicate: "p", Selectivity: 0.5},
	}}
	if _, err := Compile(onCount); err == nil || !strings.Contains(err.Error(), "filter") {
		t.Errorf("selectivity on a count stage accepted (err = %v)", err)
	}
}

func math_NaN() float64 {
	var zero float64
	return zero / zero
}

// TestProbedOptimizerOrdersHintlessFilters is the pinned acceptance
// check for the sampling optimizer: two hintless filters tie at the 0.5
// default, so Optimize must leave them in user order, while
// OptimizeProbed measures 'tight' keeping far fewer records than
// 'loose' and runs it first.
func TestProbedOptimizerOrdersHintlessFilters(t *testing.T) {
	// flavor-00..: 'tight' keeps only flavor-00's name; 'loose' keeps all.
	model := llm.Func{ModelName: "probe", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		if strings.Contains(req.Prompt, "tightpred") {
			if strings.Contains(req.Prompt, dataset.FlavorNames()[0]) {
				return unit("Yes"), nil
			}
			return unit("No"), nil
		}
		return unit("Yes"), nil
	}}
	stages := []StageSpec{
		{Name: "loose", Kind: KindFilter, Field: "name", Predicate: "loosepred"},
		{Name: "tight", Kind: KindFilter, Field: "name", Predicate: "tightpred"},
	}
	tables := flavorTables(12)

	// Hint-driven path: equal defaults, no reorder.
	plain, log, err := Optimize(Spec{Stages: stages})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stages[0].Name != "loose" || len(log) != 0 {
		t.Fatalf("default-0.5 path reordered equal filters: %v (%v)", stageNames(plain.Stages), log)
	}

	cfg := ExecConfig{Model: model, Exec: workflow.NewExecLayer(), Attribution: workflow.NewAttribution()}
	probed, trace, err := OptimizeProbed(context.Background(), Spec{Stages: stages}, cfg, tables, ProbeOptions{Sample: 6})
	if err != nil {
		t.Fatal(err)
	}
	if probed.Stages[0].Name != "tight" {
		t.Fatalf("probed order = %v (trace %v), want the measured-tighter filter first", stageNames(probed.Stages), trace)
	}
	if probed.Stages[0].Selectivity <= 0 || probed.Stages[0].Selectivity >= probed.Stages[1].Selectivity {
		t.Fatalf("measured selectivities not ordered: %v vs %v", probed.Stages[0].Selectivity, probed.Stages[1].Selectivity)
	}
	joined := strings.Join(trace, "\n")
	for _, want := range []string{`filter "tight" measured selectivity`, `filter "loose" measured selectivity`, "pushed filter"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace missing %q:\n%s", want, joined)
		}
	}

	// The probed spec must run — and the probe spend must appear as its
	// own attributed row that keeps the report summing to the total.
	p, err := Compile(probed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background(), cfg, tables)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages[0].Name != workflow.StageProbe {
		t.Fatalf("first report row = %q, want the probe row", res.Stages[0].Name)
	}
	var sum token.Usage
	for _, s := range res.Stages {
		sum = sum.Add(s.Usage)
	}
	if sum != res.Usage {
		t.Fatalf("stage sum %+v != total %+v (probe row must close the gap)", sum, res.Usage)
	}
}

// TestProbeSkipsUnprobeableFilter: a filter reading a field an upstream
// stage writes cannot be probed on the source table; it keeps the 0.5
// default and says so in the trace.
func TestProbeSkipsUnprobeableFilter(t *testing.T) {
	stages := []StageSpec{
		{Name: "cat", Kind: KindCategorize, Categories: []string{"a", "b"}, OutField: "label", Input: "source"},
		{Name: "f", Kind: KindFilter, Field: "label", Predicate: "p"},
	}
	calls := 0
	model := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		calls++
		return unit("Yes"), nil
	}}
	probed, trace, err := OptimizeProbed(context.Background(), Spec{Stages: stages},
		ExecConfig{Model: model}, flavorTables(6), ProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("probe issued %d calls for an unprobeable filter", calls)
	}
	if probed.Stages[indexOf(probed.Stages, "f")].Selectivity != 0 {
		t.Fatal("unprobeable filter's selectivity was overwritten")
	}
	if !strings.Contains(strings.Join(trace, "\n"), "not probeable") {
		t.Fatalf("trace missing the skip note: %v", trace)
	}
}

func stageNames(specs []StageSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

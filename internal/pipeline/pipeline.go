// Package pipeline composes the engine's operators into a declarative,
// optimized, budget-attributed DAG over dataset.Record tables — the layer
// between user intent and execution that the paper's thesis calls for.
//
// A Spec lists stages in the user's order; each stage wraps one core
// operator (filter, categorize, resolve, impute, join, sort, max, count)
// behind the common Stage interface and names the stage whose output it
// consumes ("source" for the root table). Compile validates the spec into
// a runnable Pipeline; Optimize rewrites the spec first — selectivity-
// aware filter pushdown ahead of quadratic resolve/join work, filters
// ordered most-selective-first — under explicit commutation rules, so the
// optimized plan returns the same temperature-0 results as the user's
// order while spending strictly less.
//
// Run executes the DAG as a streaming dataflow: stages exchange records
// over bounded channels, so a downstream per-record stage (filter,
// direct categorize, fixed-strategy impute, nested-loop join) starts
// while its upstream is still emitting, while barrier stages
// (sort/max/count, resolve, planner-driven impute) drain their input
// first. A join's right side or an impute's example pool may name an
// earlier stage instead of a static table; the executor materializes
// that stage's stream once and fans it out. Every stage shares one
// engine (one execution layer, one embedding-index registry, one
// budget), and each stage's context is tagged so the shared budget
// breaks down into per-stage usage and dollar attribution.
//
// Optimize rewrites using spec hints alone; OptimizeProbed additionally
// measures each hintless filter's selectivity on a deterministic record
// sample before ordering (probe spend attributed under
// workflow.StageProbe).
//
// ExecConfig.Adaptive enables the adaptive streaming runtime: per-stage
// micro-batch widths self-tune between ChunkMin and ChunkMax from
// observed service time versus queue wait, a streamable stage with a
// dynamic side input overlaps its main path with the side stage's
// materialization through a spillable buffer instead of draining first,
// and runs of adjacent commutable filters execute as segments whose
// internal order is revised at chunk boundaries as observed keep rates
// refine the optimizer's estimates — all with byte-identical
// temperature-0 results.
//
// ExecConfig.Feed turns a run into a standing query: records arriving on
// the channel while the pipeline executes join the stream behind the
// static source table and are re-evaluated incrementally by the same
// streaming machinery, with results after full ingestion byte-identical
// to a batch run over the final record set. internal/scenario drives
// standing queries under multi-turn traffic. See docs/PIPELINE.md,
// docs/OPTIMIZER.md, and docs/SCENARIO.md.
package pipeline

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dataset"
)

// Stage kinds, one per wrapped core operator.
const (
	KindFilter     = "filter"
	KindCategorize = "categorize"
	KindResolve    = "resolve"
	KindImpute     = "impute"
	KindJoin       = "join"
	KindSort       = "sort"
	KindMax        = "max"
	KindCount      = "count"
)

// Spec is the JSON-serializable pipeline description.
type Spec struct {
	// Source optionally names a built-in dataset to run over (declctl's
	// spec files use it); programmatic callers usually pass tables to Run
	// directly and leave it empty.
	Source SourceSpec `json:"source,omitempty"`
	// Stages in user order. Every stage's Input must be "source" or the
	// name of an earlier stage, which makes the spec a DAG by construction.
	Stages []StageSpec `json:"stages"`
}

// StageSpec describes one operator stage. Exactly the fields relevant to
// the stage's Kind apply; the rest are ignored.
type StageSpec struct {
	// Name uniquely identifies the stage ("source" is reserved).
	Name string `json:"name"`
	// Kind selects the wrapped operator.
	Kind string `json:"kind"`
	// Input is the upstream table: "source" or an earlier stage's name.
	// Empty defaults to the previous stage (or "source" for the first).
	Input string `json:"input,omitempty"`
	// Field selects which record field renders as the operator's item
	// text; empty renders the whole record ("a1 is v1; a2 is v2; ...").
	Field string `json:"field,omitempty"`
	// Predicate is the natural-language condition (filter, count).
	Predicate string `json:"predicate,omitempty"`
	// Criterion is the ranking dimension (sort, max).
	Criterion string `json:"criterion,omitempty"`
	// Strategy picks the operator strategy by its core name; empty uses
	// the operator default. The special value "auto" on an impute stage
	// invokes the planner against the remaining whole-pipeline budget.
	Strategy string `json:"strategy,omitempty"`
	// Categories is the closed category set (categorize).
	Categories []string `json:"categories,omitempty"`
	// OutField is where categorize/join write their result (defaults
	// "category" and "match").
	OutField string `json:"out_field,omitempty"`
	// TargetField is the attribute to impute.
	TargetField string `json:"target_field,omitempty"`
	// Side names the side table (impute training records, default "train";
	// join right side, required). It may name either a static table passed
	// to Run or an earlier stage, whose output table the executor
	// materializes once and fans out to every side consumer.
	Side string `json:"side,omitempty"`
	// Neighbors is the k-NN width (impute).
	Neighbors int `json:"neighbors,omitempty"`
	// Examples is the few-shot example count (impute).
	Examples int `json:"examples,omitempty"`
	// TargetAccuracy is the planner's accuracy goal for strategy "auto"
	// (default 0.8).
	TargetAccuracy float64 `json:"target_accuracy,omitempty"`
	// InvariantFields declares record fields that true duplicates agree on
	// exactly (resolve). A filter reading such a field keeps or drops every
	// member of a duplicate group together, which is what licenses pushing
	// it ahead of the quadratic dedupe.
	InvariantFields []string `json:"invariant_fields,omitempty"`
	// Selectivity estimates the filter's keep fraction, strictly in
	// (0, 1]; the optimizer orders adjacent filters most-selective-first.
	// Zero means no hint: Optimize assumes 0.5, while OptimizeProbed
	// measures the real fraction on a record sample. Any other value
	// outside (0, 1] is rejected at Compile time.
	Selectivity float64 `json:"selectivity,omitempty"`
	// BlockDistance is the embedding blocking radius (resolve
	// blocked-pairwise; join candidate cutoff).
	BlockDistance float64 `json:"block_distance,omitempty"`
}

// Pipeline is a compiled, runnable stage DAG.
type Pipeline struct {
	stages []Stage
	specs  []StageSpec // normalized, index-aligned with stages
}

// Stages returns the compiled stages in execution (topological) order.
func (p *Pipeline) Stages() []Stage { return p.stages }

// Compile validates the spec and builds a runnable pipeline. It does not
// optimize; call Optimize on the spec first for the rewritten plan.
func Compile(spec Spec) (*Pipeline, error) {
	specs, err := normalize(spec.Stages)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{specs: specs}
	for _, s := range specs {
		st, err := buildStage(s)
		if err != nil {
			return nil, err
		}
		p.stages = append(p.stages, st)
	}
	return p, nil
}

// normalize fills default inputs, then validates names, kinds, edges, and
// kind-specific requirements. The returned slice is a copy.
func normalize(stages []StageSpec) ([]StageSpec, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("pipeline: no stages")
	}
	out := append([]StageSpec(nil), stages...)
	all := make(map[string]bool, len(out))
	for _, s := range out {
		all[s.Name] = true
	}
	seen := map[string]bool{"source": true}
	prev := "source"
	for i := range out {
		s := &out[i]
		if s.Name == "" || s.Name == "source" {
			return nil, fmt.Errorf("pipeline: stage %d needs a name other than %q", i, s.Name)
		}
		if strings.HasPrefix(s.Name, "__") {
			return nil, fmt.Errorf("pipeline: stage name %q is reserved (\"__\" prefixes label executor internals such as selectivity probes)", s.Name)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("pipeline: duplicate stage name %q", s.Name)
		}
		if s.Input == "" {
			s.Input = prev
		}
		if !seen[s.Input] {
			return nil, fmt.Errorf("pipeline: stage %q consumes %q, which is not source or an earlier stage", s.Name, s.Input)
		}
		if s.Side != "" && all[s.Side] && !seen[s.Side] {
			return nil, fmt.Errorf("pipeline: stage %q uses side %q, which names a stage that is not earlier in the spec (side inputs must be earlier stages or static tables)", s.Name, s.Side)
		}
		if err := validateKind(*s); err != nil {
			return nil, err
		}
		seen[s.Name] = true
		prev = s.Name
	}
	return out, nil
}

func validateKind(s StageSpec) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("pipeline: stage %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	switch s.Kind {
	case KindFilter, KindCount:
		if s.Predicate == "" {
			return bad("%s needs a predicate", s.Kind)
		}
	case KindSort, KindMax:
		if s.Criterion == "" {
			return bad("%s needs a criterion", s.Kind)
		}
	case KindCategorize:
		if len(s.Categories) == 0 && s.Strategy != "two-phase" {
			return bad("categorize needs categories (or strategy two-phase)")
		}
	case KindImpute:
		if s.TargetField == "" {
			return bad("impute needs a target_field")
		}
	case KindJoin:
		if s.Side == "" {
			return bad("join needs a side table name")
		}
	case KindResolve:
		// No required knobs; strategy defaults to pairwise.
	default:
		return bad("unknown kind %q", s.Kind)
	}
	// A selectivity hint of exactly 0 means "unset" (Optimize assumes 0.5;
	// OptimizeProbed measures). Anything else must be a real keep fraction:
	// the old check let NaN through — NaN compares false against every
	// bound — and the runtime default then silently swallowed it.
	switch {
	case s.Selectivity == 0:
	case s.Kind != KindFilter:
		return bad("selectivity %v: the hint only applies to filter stages", s.Selectivity)
	case math.IsNaN(s.Selectivity) || s.Selectivity < 0 || s.Selectivity > 1:
		return bad("selectivity %v outside (0, 1]; omit the field to let the optimizer assume 0.5 or measure it", s.Selectivity)
	}
	return nil
}

// consumers returns the names of stages consuming the named output,
// either as their main input or as a dynamic side table. Both uses need
// the stage's complete output, so both block filter pushdown across it.
func consumers(specs []StageSpec, name string) []string {
	var out []string
	for _, s := range specs {
		if s.Input == name || s.Side == name {
			out = append(out, s.Name)
		}
	}
	return out
}

// sideStage returns the index of the stage the spec's Side names, or -1
// when the side is a static table (or unset).
func sideStage(specs []StageSpec, s StageSpec) int {
	if s.Side == "" {
		return -1
	}
	return indexOf(specs, s.Side)
}

// SourceSpec names a built-in dataset for declctl spec files.
type SourceSpec struct {
	// Dataset is "flavors", "restaurants", or "buy".
	Dataset string `json:"dataset,omitempty"`
	// Records sizes the source table (dataset default when 0).
	Records int `json:"records,omitempty"`
	// Train sizes the "train" side table for the imputation datasets.
	Train int `json:"train,omitempty"`
	// Seed drives the deterministic generators.
	Seed int64 `json:"seed,omitempty"`
}

// Tables materializes the source (and any side tables) described by the
// spec: the main table under "source", training records under "train".
func (s SourceSpec) Tables() (map[string][]dataset.Record, error) {
	seed := s.Seed
	if seed == 0 {
		seed = 11
	}
	switch s.Dataset {
	case "flavors":
		names := dataset.FlavorNames()
		if s.Records > 0 && s.Records < len(names) {
			names = names[:s.Records]
		}
		recs := make([]dataset.Record, len(names))
		for i, n := range names {
			recs[i] = dataset.Record{
				ID:     fmt.Sprintf("flavor-%02d", i),
				Fields: []dataset.Field{{Name: "name", Value: n}},
			}
		}
		return map[string][]dataset.Record{"source": recs}, nil
	case "restaurants", "buy":
		records, train := s.Records, s.Train
		if records == 0 {
			records = 40
		}
		if train == 0 {
			train = 120
		}
		var ds *dataset.ImputationDataset
		if s.Dataset == "restaurants" {
			ds = dataset.GenerateRestaurants(train, records, seed)
		} else {
			ds = dataset.GenerateBuy(train, records, seed)
		}
		return map[string][]dataset.Record{"source": ds.Test, "train": ds.Train}, nil
	default:
		return nil, fmt.Errorf("pipeline: unknown source dataset %q", s.Dataset)
	}
}

package pipeline

import (
	"fmt"

	"repro/internal/core"
)

// Optimize rewrites the spec's logical plan without changing its
// temperature-0 results: cheap per-record filters sift ahead of the
// expensive stages they commute with (quadratic dedupe shrinks with the
// square of the filter's selectivity; per-record stages shrink linearly),
// and adjacent filters order most-selective-first. It returns the
// rewritten spec and a human-readable log of the rewrites applied.
//
// A filter F crosses its producing stage S only when all of these hold:
//
//   - F is S's sole consumer (another consumer still needs S's unfiltered
//     output);
//   - S is per-record — each record's outcome is independent of which
//     other records share the table (impute; direct categorize; rating
//     sort; nested-loop join) and S does not write the field F reads — or
//     S is an exact pairwise dedupe whose InvariantFields include F's
//     field, so F keeps or drops every member of a duplicate group
//     together;
//   - crossing another filter additionally requires F to be strictly more
//     selective, which orders filter runs and terminates the rewrite.
func Optimize(spec Spec) (Spec, []string, error) {
	specs, err := normalize(spec.Stages)
	if err != nil {
		return Spec{}, nil, err
	}
	specs, log := pushdown(specs)
	out := spec
	out.Stages = specs
	return out, log, nil
}

// pushdown runs the filter-pushdown rewrite loop over normalized specs
// and returns the rewritten plan plus the rewrite trace. Both Optimize
// (hint-driven) and OptimizeProbed (measurement-driven) end here; they
// differ only in where each filter's selectivity came from.
func pushdown(specs []StageSpec) ([]StageSpec, []string) {
	var log []string
	for changed := true; changed; {
		changed = false
		for i := range specs {
			f := specs[i]
			if f.Kind != KindFilter || f.Input == "source" {
				continue
			}
			j := indexOf(specs, f.Input)
			s := specs[j]
			if len(consumers(specs, s.Name)) != 1 || !commutesWithFilter(f, s) {
				continue
			}
			// Swap the edge: F consumes S's old input, S consumes F, and
			// F's consumers — main-input and side-table alike — move to S
			// (whose output now equals F's old output by the commutation
			// rule).
			for k := range specs {
				if specs[k].Input == f.Name {
					specs[k].Input = s.Name
				}
				if specs[k].Side == f.Name {
					specs[k].Side = s.Name
				}
			}
			specs[i].Input = s.Input
			specs[j].Input = f.Name
			specs = reorderTopo(specs)
			log = append(log, fmt.Sprintf("pushed filter %q ahead of %s %q", f.Name, s.Kind, s.Name))
			changed = true
			break
		}
	}
	return specs, log
}

func indexOf(specs []StageSpec, name string) int {
	for i := range specs {
		if specs[i].Name == name {
			return i
		}
	}
	return -1
}

// selectivity returns the filter's estimated keep fraction (default 0.5).
func selectivity(s StageSpec) float64 {
	if s.Selectivity > 0 {
		return s.Selectivity
	}
	return 0.5
}

// writes lists the record fields a stage adds or rewrites.
func writes(s StageSpec) []string {
	switch s.Kind {
	case KindCategorize:
		if s.OutField != "" {
			return []string{s.OutField}
		}
		return []string{"category"}
	case KindImpute:
		return []string{s.TargetField}
	case KindJoin:
		if s.OutField != "" {
			return []string{s.OutField}
		}
		return []string{"match"}
	}
	return nil
}

// perRecord reports whether each record's outcome under the stage is
// independent of which other records share the input table — the property
// that makes dropping records before the stage equivalent to dropping
// them after.
func perRecord(s StageSpec) bool {
	switch s.Kind {
	case KindFilter:
		// Every filter policy decides per item.
		return true
	case KindImpute:
		// A fixed strategy answers per query from the (static) training
		// side table. Strategy "auto" is NOT per-record: the planner's
		// projected costs scale with the query-table size, so shrinking
		// the table can move a pricier strategy inside a finite budget
		// and change which strategy imputes.
		return s.Strategy != "auto"
	case KindCategorize:
		return s.Strategy != string(core.CategorizeTwoPhase)
	case KindSort:
		// Ratings are per-item; every other sort strategy sees the whole
		// list (one-prompt) or compares across it (pairwise Copeland
		// counts), so membership changes its output.
		return s.Strategy == string(core.SortRating)
	case KindJoin:
		// Nested-loop matches each left record independently; the
		// transitive strategy reuses closure across left records.
		return s.Strategy == string(core.JoinNestedLoop)
	}
	// Resolve merges across records; count and max aggregate the table.
	return false
}

// commutesWithFilter reports whether filter f over stage s can swap with
// it — filter(s(X)) == s(filter(X)) at temperature 0.
func commutesWithFilter(f, s StageSpec) bool {
	reads := f.Field // "" reads the whole record
	switch s.Kind {
	case KindFilter:
		return selectivity(f) < selectivity(s)
	case KindResolve:
		// Dedupe drops records, so the crossing leans on the declared
		// invariant: duplicates agree exactly on the filtered field, hence
		// groups survive or vanish whole. Sound only for the exact
		// pairwise strategy — blocking and coarse grouping change their
		// candidate structure with table membership.
		if s.Strategy != "" && s.Strategy != string(core.DedupePairwise) {
			return false
		}
		if reads == "" {
			return false
		}
		for _, inv := range s.InvariantFields {
			if inv == reads {
				return true
			}
		}
		return false
	default:
		if !perRecord(s) {
			return false
		}
		w := writes(s)
		if reads == "" {
			return len(w) == 0
		}
		for _, field := range w {
			if field == reads {
				return false
			}
		}
		return true
	}
}

// reorderTopo restores the inputs-before-consumers invariant after an
// edge swap — counting dynamic side-table references as edges too —
// keeping the original relative order where dependencies allow (stable
// Kahn by current position).
func reorderTopo(specs []StageSpec) []StageSpec {
	placed := map[string]bool{"source": true}
	out := make([]StageSpec, 0, len(specs))
	remaining := append([]StageSpec(nil), specs...)
	for len(remaining) > 0 {
		progressed := false
		rest := remaining[:0]
		for _, s := range remaining {
			sideReady := sideStage(specs, s) < 0 || placed[s.Side]
			if placed[s.Input] && sideReady {
				out = append(out, s)
				placed[s.Name] = true
				progressed = true
			} else {
				rest = append(rest, s)
			}
		}
		remaining = rest
		if !progressed {
			// A cycle cannot arise from pairwise swaps of a valid DAG;
			// keep the leftovers in place rather than looping forever.
			return append(out, remaining...)
		}
	}
	return out
}

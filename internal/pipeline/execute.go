package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/resil"
	"repro/internal/token"
	"repro/internal/workflow"
)

// OnRecordError values: what a streaming per-record stage does when a
// chunk's records cannot be processed (after the resilience policy, if
// any, has already done its retrying). Barrier stages always fail fast —
// their output depends on the whole table, so dropping records would
// silently change the answer rather than narrow it.
const (
	// OnRecordFail aborts the run on the first record error (the default,
	// and the only pre-existing behaviour).
	OnRecordFail = "fail"
	// OnRecordSkip retries the failed chunk record by record and silently
	// drops the records that still fail, reporting only a count.
	OnRecordSkip = "skip"
	// OnRecordQuarantine is skip plus evidence: dropped records are
	// counted per stage with the first few per-record errors preserved in
	// the StageReport, so a degraded run says exactly what it left out.
	OnRecordQuarantine = "quarantine"
)

// ExecConfig parameterises one pipeline run.
type ExecConfig struct {
	// Model answers every unit task.
	Model llm.Model
	// Embedder overrides the k-NN embedder (default embed.Default()).
	Embedder embed.Embedder
	// Budget caps the whole pipeline; nil runs unlimited (with full
	// accounting either way).
	Budget *workflow.Budget
	// Exec is the shared execution layer (cache + coalescer). Nil builds a
	// fresh layer for the run; pass a persistent one to share across runs —
	// and to let OptimizeProbed's selectivity probes pre-warm the cache the
	// run then reads.
	Exec *workflow.ExecLayer
	// Registry is the shared embedding-index registry. Nil builds a fresh
	// one for the run, which already spans every stage.
	Registry *embed.Registry
	// Feed turns the run into a standing query: records received on the
	// channel join the stream behind the static "source" table, in arrival
	// order, while the pipeline is already executing — per-record stages
	// re-evaluate incrementally chunk by chunk (reusing the adaptive
	// chunker and, on the side-input overlap path, the spillable spool),
	// and barrier stages simply see the longer stream. Run returns only
	// after Feed is closed and fully drained, so the caller must feed and
	// close the channel from another goroutine. Temperature-0 results
	// after full ingestion are byte-identical to a batch run whose source
	// table already contained the fed records (pinned by
	// TestStandingQueryMatchesBatch). Nil runs the static table alone.
	Feed <-chan dataset.Record
	// Attribution is the per-stage ledger the run records into; nil builds
	// a fresh one. Pass the same ledger (and Exec) to OptimizeProbed and
	// Run so probe spend appears in the run's report under
	// workflow.StageProbe and the report still sums to the budget total.
	// Use one Attribution per logical run — it accumulates.
	Attribution *workflow.Attribution
	// Batch packs up to this many unit tasks per envelope prompt (<= 1
	// disables batching).
	Batch int
	// Parallelism bounds concurrent LLM calls per operator (default 8).
	Parallelism int
	// Chunk bounds the records per streaming micro-batch (default
	// max(Batch, 8)). Larger chunks amortize per-invocation overhead;
	// smaller ones hand records downstream sooner. A positive Chunk
	// always forces that fixed width, even under Adaptive.
	Chunk int
	// Adaptive enables the adaptive streaming runtime: per-stage
	// micro-batch widths self-tune between ChunkMin and ChunkMax from
	// observed service time versus queue wait (unless Chunk pins them), a
	// streamable stage with a dynamic side input overlaps its main path
	// with the side stage's materialization through a spillable buffer
	// instead of draining first, and runs of adjacent commutable filter
	// stages may be re-ordered at chunk boundaries as observed
	// selectivities refine the optimizer's estimates. Temperature-0
	// results are identical either way. A no-op under Materialized;
	// Isolated keeps per-stage engines, so it disables the segment
	// re-ordering (which would share one engine across members) while
	// chunk self-tuning and side-input overlap still apply.
	Adaptive bool
	// ChunkMin and ChunkMax bound the adaptive chunk width (defaults 1
	// and 64). Setting both with ChunkMin > ChunkMax is rejected at Run;
	// a floor alone above the default ceiling raises the ceiling to
	// match, pinning that width. Ignored unless Adaptive is set and
	// Chunk is 0.
	ChunkMin, ChunkMax int
	// Materialized disables record-level streaming: every stage drains its
	// whole input before running — the pre-streaming executor behaviour.
	// Temperature-0 results are identical either way; the flag exists for
	// the streaming-vs-materialized wall-clock comparison in the
	// experiments.
	Materialized bool
	// Isolated reproduces naive sequential operator invocation: a fresh
	// engine per stage, each with the default private per-invocation
	// cache and no shared layer, registry, or batching. The experiments
	// use it as the baseline the optimized pipeline is measured against.
	Isolated bool
	// Resilience, when non-nil, wraps the model with a retry / backoff /
	// hedging / circuit-breaker policy for the run. The wrapper sits below
	// the budget, attribution, batcher, and cache, so callers above see
	// one logical call per ask (counted and cached once) however many
	// physical attempts the policy spent; the physical activity lands in
	// the Attribution's resilience counters and the Result. With no faults
	// firing the wrapper is a no-op and results are byte-identical.
	Resilience *resil.Policy
	// OnRecordError selects degraded-mode execution for streaming
	// per-record stages: OnRecordFail (default), OnRecordSkip, or
	// OnRecordQuarantine. A failing chunk is retried record by record and
	// the records that still fail are dropped (skip) or dropped-and-
	// reported (quarantine) instead of aborting the run. Context
	// cancellation, budget exhaustion, and an open circuit breaker always
	// abort — they poison every record, not one. Barrier stages and
	// adaptive filter segments fail fast regardless.
	OnRecordError string
}

// chunkSize resolves the streaming micro-batch width.
func (cfg ExecConfig) chunkSize() int {
	if cfg.Chunk > 0 {
		return cfg.Chunk
	}
	if cfg.Batch > 8 {
		return cfg.Batch
	}
	return 8
}

// chunkBounds resolves the adaptive width floor and ceiling. The default
// ceiling never sits below the fixed-width default (max(Batch, 8)): a
// large Batch must stay reachable, or adaptive runs would pack envelopes
// worse than fixed streaming ever could. Explicitly conflicting bounds
// were rejected at Run, so max < min here means only the floor was set
// and it clears the default ceiling — the ceiling rises to match.
func (cfg ExecConfig) chunkBounds() (min, max int) {
	min, max = cfg.ChunkMin, cfg.ChunkMax
	if min <= 0 {
		min = 1
	}
	if max <= 0 {
		max = 64
		if cs := cfg.chunkSize(); cs > max {
			max = cs
		}
	}
	if max < min {
		max = min
	}
	return min, max
}

// adaptiveChunking reports whether stage widths self-tune this run: a
// positive Chunk still forces a fixed size, and Materialized disables
// streaming (and with it the whole adaptive runtime).
func (cfg ExecConfig) adaptiveChunking() bool {
	return cfg.Adaptive && cfg.Chunk == 0 && !cfg.Materialized
}

// newChunker builds one stage's micro-batch width policy.
func (cfg ExecConfig) newChunker() chunker {
	if !cfg.adaptiveChunking() {
		return fixedChunker(cfg.chunkSize())
	}
	min, max := cfg.chunkBounds()
	return newAdaptiveChunker(min, max, cfg.chunkSize())
}

// chunkCap sizes each inter-stage channel: the widest chunk the run may
// assemble, so a grown adaptive chunk can actually fill from the buffer.
func (cfg ExecConfig) chunkCap() int {
	if cfg.adaptiveChunking() {
		_, max := cfg.chunkBounds()
		if max > cfg.chunkSize() {
			return max
		}
	}
	return cfg.chunkSize()
}

// runtime binds one run's shared machinery: the budget, the attribution
// ledger, and the engine factory (one shared engine unless Isolated).
// OptimizeProbed builds the same runtime from the same config so probes
// run through the very cache and ledger the run will use.
type execRuntime struct {
	budget    *workflow.Budget
	attr      *workflow.Attribution
	resil     *resil.Model // non-nil when cfg.Resilience wrapped the model
	engineFor func() *core.Engine
}

// flushResil folds the run's resilience activity into the ledger and
// returns it. The wrapper is private to this runtime, so its lifetime
// counters are exactly this run's delta.
func (rt *execRuntime) flushResil() workflow.ResilienceStats {
	if rt.resil == nil {
		return workflow.ResilienceStats{}
	}
	s := rt.resil.Stats()
	delta := workflow.ResilienceStats{
		Retries:      s.Retries,
		Hedges:       s.Hedges,
		HedgeWins:    s.HedgeWins,
		BreakerOpens: s.BreakerOpens,
		RetryDenials: s.RetryDenials,
	}
	if !delta.Zero() {
		rt.attr.AddResilience(delta)
	}
	return delta
}

func (cfg ExecConfig) runtime() *execRuntime {
	budget := cfg.Budget
	if budget == nil {
		budget = workflow.Unlimited()
	}
	attr := cfg.Attribution
	if attr == nil {
		attr = workflow.NewAttribution()
	}
	baseOpts := []core.Option{core.WithBudget(budget), core.WithAttribution(attr)}
	if cfg.Parallelism > 0 {
		baseOpts = append(baseOpts, core.WithParallelism(cfg.Parallelism))
	}
	if cfg.Embedder != nil {
		baseOpts = append(baseOpts, core.WithEmbedder(cfg.Embedder))
	}
	rt := &execRuntime{budget: budget, attr: attr}
	model := cfg.Model
	if cfg.Resilience != nil {
		// Below everything: retries and hedges are invisible to the budget,
		// ledger, batcher, and cache above — one logical call per ask.
		rt.resil = resil.Wrap(model, *cfg.Resilience)
		model = rt.resil
	}
	rt.engineFor = func() *core.Engine { return core.New(model, baseOpts...) }
	if !cfg.Isolated {
		layer := cfg.Exec
		if layer == nil {
			layer = workflow.NewExecLayer()
		}
		registry := cfg.Registry
		if registry == nil {
			registry = embed.NewRegistry()
		}
		opts := append(append([]core.Option(nil), baseOpts...),
			core.WithExecutionLayer(layer), core.WithIndexRegistry(registry))
		if cfg.Batch > 1 {
			opts = append(opts, core.WithBatching(cfg.Batch))
		}
		shared := core.New(model, opts...)
		rt.engineFor = func() *core.Engine { return shared }
	}
	return rt
}

// Env is the execution environment handed to each stage.
type Env struct {
	// Engine runs the stage's operator.
	Engine *core.Engine
	// Budget is the shared whole-pipeline budget.
	Budget *workflow.Budget
	// Tables holds the side tables visible to the stage: the static tables
	// passed to Run (plus "source"), overlaid with any dynamic side table
	// materialized from an earlier stage's stream.
	Tables map[string][]dataset.Record

	chunk chunker
	stats *stageStats
	run   *runState
	onErr string // resolved OnRecordError mode
}

// maxQuarantineErrors bounds the per-stage error samples kept for the
// StageReport; the count is always exact.
const maxQuarantineErrors = 3

// quarantineInfo is one stage's side-channel of dropped records.
type quarantineInfo struct {
	count int
	errs  []string
}

// runState collects scalar outputs, details, and the degraded-mode
// side-channels across stages.
type runState struct {
	mu      sync.Mutex
	scalars map[string]string
	details map[string]string
	skipped map[string]int
	quar    map[string]*quarantineInfo
}

// dropRecord records one record dropped under skip or quarantine mode.
func (e *Env) dropRecord(stage string, r dataset.Record, err error) {
	e.run.mu.Lock()
	defer e.run.mu.Unlock()
	if e.onErr == OnRecordSkip {
		e.run.skipped[stage]++
		return
	}
	q := e.run.quar[stage]
	if q == nil {
		q = &quarantineInfo{}
		e.run.quar[stage] = q
	}
	q.count++
	if len(q.errs) < maxQuarantineErrors {
		q.errs = append(q.errs, fmt.Sprintf("record %s: %v", r.ID, err))
	}
}

func (e *Env) setScalar(stage, value string) {
	e.run.mu.Lock()
	defer e.run.mu.Unlock()
	e.run.scalars[stage] = value
}

func (e *Env) detail(stage, text string) {
	e.run.mu.Lock()
	defer e.run.mu.Unlock()
	e.run.details[stage] = text
}

// StageReport is the per-stage accounting of one run.
type StageReport struct {
	// Name and Kind identify the stage. A run whose spec was rewritten by
	// OptimizeProbed additionally reports one synthetic row named
	// workflow.StageProbe ("__probe", kind "probe") carrying the
	// optimizer's selectivity-probe spend.
	Name, Kind string
	// In and Out count the records entering and leaving the stage.
	In, Out int
	// Usage is the real upstream spend attributed to this stage; summed
	// across stages (including the probe row) it equals the pipeline
	// total (cache hits, coalesced followers, and batch co-riders are
	// free and attributed nowhere).
	Usage token.Usage
	// Cost prices Usage at the model's rate.
	Cost float64
	// Timing is the stage's observed streaming behaviour: service time
	// versus queue wait, chunks, and records — the signals the adaptive
	// chunker tunes against, surfaced for inspection and benchmarks.
	Timing workflow.StageTiming
	// Detail is the stage's operator-specific summary.
	Detail string
	// Skipped counts records dropped under OnRecordSkip.
	Skipped int
	// Quarantined counts records diverted under OnRecordQuarantine, with
	// the first few per-record errors preserved in QuarantineErrors.
	Quarantined      int
	QuarantineErrors []string
}

// Result is the outcome of one pipeline run.
type Result struct {
	// Tables holds every stage's output table by stage name. One caveat
	// under ExecConfig.Adaptive: inside a re-orderable filter segment,
	// a non-tail filter's table (and its In/Out counts) reflects the
	// records it actually evaluated under the orders used, which can
	// vary with chunk-boundary timing; the segment's tail table — what
	// every downstream consumer sees — and all non-segment tables are
	// byte-identical to a non-adaptive run at temperature 0.
	Tables map[string][]dataset.Record
	// Scalars holds the scalar outputs of count/max stages by stage name.
	Scalars map[string]string
	// Stages reports per-stage accounting in pipeline order (preceded by
	// the synthetic probe row when the optimizer measured selectivities
	// against this run's Attribution).
	Stages []StageReport
	// Usage and Cost total the run (equal to the sum over Stages).
	Usage token.Usage
	Cost  float64
	// Skipped and Quarantined total the records dropped by degraded-mode
	// execution across stages (see ExecConfig.OnRecordError).
	Skipped     int
	Quarantined int
	// Resilience reports the run's physical retry/hedge/breaker activity
	// when ExecConfig.Resilience was set (zero otherwise). These count
	// events below the logical-call accounting: Usage is unaffected by
	// how many attempts a call took.
	Resilience workflow.ResilienceStats
}

// streamOut is one stage's output viewed both as a stream and as a
// table: the owning goroutine sends each record to every subscribed
// consumer channel while collecting the full table for the Result (and
// for dynamic side-table consumers, who need it whole). done closes when
// the stage finishes; err is set before done closes on failure.
type streamOut struct {
	table    []dataset.Record
	err      error
	consumed int
	done     chan struct{}
	subs     []chan dataset.Record
}

// send delivers one record to every subscriber, honouring backpressure;
// it reports false when the run's context is cancelled.
func (o *streamOut) send(ctx context.Context, r dataset.Record) bool {
	for _, ch := range o.subs {
		select {
		case ch <- r:
		case <-ctx.Done():
			return false
		}
	}
	return true
}

func (o *streamOut) closeSubs() {
	for _, ch := range o.subs {
		close(ch)
	}
}

// drain collects the whole input stream — the barrier path — and then
// surfaces the upstream error if the stream ended because its producer
// failed.
func drain(ctx context.Context, in <-chan dataset.Record, up *streamOut) ([]dataset.Record, error) {
	var recs []dataset.Record
	for {
		select {
		case r, ok := <-in:
			if !ok {
				<-up.done
				if up.err != nil {
					return nil, up.err
				}
				return recs, nil
			}
			recs = append(recs, r)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// nextChunk assembles one streaming micro-batch: it blocks for the first
// record, then greedily tops up with whatever the producer has already
// buffered (up to n), so a fast upstream fills chunks and a slow one
// doesn't stall the stage. Returns more=false once the stream is
// exhausted; the final chunk may still carry records.
//
// Cancellation is checked eagerly, not just inside the selects: the
// blocking first-record receive races a ready channel against ctx.Done,
// and Go's select picks ready cases at random — a busy upstream could
// otherwise keep a cancelled stage assembling chunks indefinitely. The
// explicit polls make cancellation win the next boundary deterministically
// whether the upstream is idle (the select's Done case fires) or flooding
// (the entry poll fires).
func nextChunk(ctx context.Context, in <-chan dataset.Record, n int) (chunk []dataset.Record, more bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	select {
	case r, ok := <-in:
		if !ok {
			return nil, false, nil
		}
		chunk = append(chunk, r)
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	for len(chunk) < n {
		if err := ctx.Err(); err != nil {
			return chunk, false, err
		}
		select {
		case r, ok := <-in:
			if !ok {
				return chunk, false, nil
			}
			chunk = append(chunk, r)
		default:
			return chunk, true, nil
		}
	}
	return chunk, true, nil
}

// Run executes the pipeline over the given tables (which must include
// "source") as a streaming dataflow: every stage runs in its own
// goroutine, records flow between stages over bounded channels, and a
// per-record stage (filter, direct categorize, fixed-strategy impute,
// nested-loop join) processes micro-batches while its upstream is still
// emitting. Barrier stages — sort, max, count, resolve, planner-driven
// impute, any stage with a dynamic side input, or everything when
// cfg.Materialized is set — drain their input first; results are
// identical either way at temperature 0. Unless Isolated, all stages
// stream their unit tasks through one shared engine: one execution
// layer, one embedding-index registry, one budget. Each stage's context
// is tagged with its name, so the returned report attributes the shared
// budget's spend stage by stage. With cfg.Feed set, the run is a
// standing query: records arriving on the channel extend the source
// stream mid-run, and Run returns after the feed closes and drains.
func (p *Pipeline) Run(ctx context.Context, cfg ExecConfig, tables map[string][]dataset.Record) (*Result, error) {
	source, ok := tables["source"]
	if !ok {
		return nil, fmt.Errorf("pipeline: tables lack %q", "source")
	}
	if cfg.ChunkMin > 0 && cfg.ChunkMax > 0 && cfg.ChunkMin > cfg.ChunkMax {
		return nil, fmt.Errorf("pipeline: ChunkMin %d exceeds ChunkMax %d", cfg.ChunkMin, cfg.ChunkMax)
	}
	switch cfg.OnRecordError {
	case "", OnRecordFail, OnRecordSkip, OnRecordQuarantine:
	default:
		return nil, fmt.Errorf("pipeline: unknown OnRecordError %q (want fail, skip, or quarantine)", cfg.OnRecordError)
	}
	rt := cfg.runtime()
	state := &runState{scalars: make(map[string]string), details: make(map[string]string),
		skipped: make(map[string]int), quar: make(map[string]*quarantineInfo)}

	outs := make(map[string]*streamOut, len(p.stages)+1)
	root := &streamOut{table: source, done: make(chan struct{})}
	close(root.done)
	outs["source"] = root
	for _, st := range p.stages {
		outs[st.Name()] = &streamOut{done: make(chan struct{})}
	}

	// Adaptive runs collapse runs of adjacent commutable filters into
	// segments the executor may re-order mid-run; segMember marks every
	// stage driven by a segment goroutine instead of its own. Isolated
	// runs keep every stage on its own engine — a segment would share one
	// across its members — so they never form segments.
	var segments [][]int
	segID := make([]int, len(p.stages)) // 0 = no segment; k = member of segments[k-1]
	if cfg.Adaptive && !cfg.Materialized && !cfg.Isolated {
		segments = adaptiveSegments(p.specs)
		for k, seg := range segments {
			for _, j := range seg {
				segID[j] = k + 1
			}
		}
	}

	// Wire one bounded channel per main-input edge. Dynamic side-table
	// consumers are not subscribers: they read the producer's collected
	// table after its done closes. Stages inside a segment take no edge
	// of their own — the segment consumes the head's input and emits on
	// the tail's output, whose downstream subscriptions wire as usual.
	chunk := cfg.chunkCap()
	inputs := make(map[string]chan dataset.Record, len(p.stages))
	for i, st := range p.stages {
		if segID[i] > 0 {
			if j := indexOf(p.specs, p.specs[i].Input); j >= 0 && segID[j] == segID[i] {
				continue // intra-segment edge: records flow inside the goroutine
			}
		}
		ch := make(chan dataset.Record, chunk)
		inputs[st.Name()] = ch
		up := outs[st.Input()]
		up.subs = append(up.subs, ch)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup

	// Feed the materialized source table to its subscribers, then — for a
	// standing query — the ingest channel until it closes. Fed records are
	// not appended to root.table: the slice aliases the caller's "source"
	// table, and consumers see every record through the stream either way.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer root.closeSubs()
		for _, r := range root.table {
			if !root.send(ctx, r) {
				return
			}
		}
		if cfg.Feed == nil {
			return
		}
		for {
			select {
			case r, ok := <-cfg.Feed:
				if !ok {
					return
				}
				if !root.send(ctx, r) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	for _, seg := range segments {
		wg.Add(1)
		go func(seg []int) {
			defer wg.Done()
			p.runSegment(ctx, cancel, cfg, rt, state, outs, inputs[p.specs[seg[0]].Name], tables, seg)
		}(seg)
	}
	for i, st := range p.stages {
		if segID[i] > 0 {
			continue
		}
		wg.Add(1)
		go func(st Stage, spec StageSpec) {
			defer wg.Done()
			p.runStage(ctx, cancel, cfg, rt, state, outs, inputs[st.Name()], tables, st, spec)
		}(st, p.specs[i])
	}
	wg.Wait()
	// Fold resilience activity into the ledger even when the run failed:
	// the retries were spent either way and the ledger must say so.
	resilStats := rt.flushResil()

	// Surface the root cause: a failing stage cancels the run, so sibling
	// branches die with context errors that would otherwise mask the stage
	// error the caller actually needs.
	var cancelErr error
	for _, st := range p.stages {
		if err := outs[st.Name()].err; err != nil {
			if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			if cancelErr == nil {
				cancelErr = err
			}
		}
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	// An outer cancellation can end the source feeder (and with it every
	// stream) without any stage recording an error — e.g. a stage whose
	// in-flight chunk completed after the cancel sees only a closed
	// channel. Never report such a truncated run as success.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}

	res := &Result{
		Tables:  make(map[string][]dataset.Record, len(p.stages)),
		Scalars: state.scalars,
	}
	if u := rt.attr.Usage(workflow.StageProbe); !u.IsZero() {
		res.Stages = append(res.Stages, StageReport{
			Name:   workflow.StageProbe,
			Kind:   "probe",
			Usage:  u,
			Cost:   rt.attr.Cost(workflow.StageProbe),
			Detail: "optimizer selectivity probes",
		})
	}
	for _, st := range p.stages {
		out := outs[st.Name()]
		res.Tables[st.Name()] = out.table
		report := StageReport{
			Name:    st.Name(),
			Kind:    st.Kind(),
			In:      out.consumed,
			Out:     len(out.table),
			Usage:   rt.attr.Usage(st.Name()),
			Cost:    rt.attr.Cost(st.Name()),
			Timing:  rt.attr.Timing(st.Name()),
			Detail:  state.details[st.Name()],
			Skipped: state.skipped[st.Name()],
		}
		if q := state.quar[st.Name()]; q != nil {
			report.Quarantined = q.count
			report.QuarantineErrors = q.errs
		}
		res.Skipped += report.Skipped
		res.Quarantined += report.Quarantined
		res.Stages = append(res.Stages, report)
	}
	res.Usage, res.Cost = rt.attr.Total()
	res.Resilience = resilStats
	return res, nil
}

// runStage drives one stage goroutine: resolve the side table, consume
// the input (streamed or drained), run the operator, and emit outputs.
func (p *Pipeline) runStage(ctx context.Context, cancel context.CancelFunc, cfg ExecConfig, rt *execRuntime,
	state *runState, outs map[string]*streamOut, in <-chan dataset.Record, tables map[string][]dataset.Record,
	st Stage, spec StageSpec) {
	out := outs[st.Name()]
	defer close(out.done)
	defer out.closeSubs()
	up := outs[st.Input()]

	// fail records a propagated (or cancellation) error without re-wrap;
	// abort records this stage's own failure and cancels the run.
	fail := func(err error) { out.err = err }
	abort := func(err error) {
		out.err = fmt.Errorf("stage %q: %w", st.Name(), err)
		cancel()
	}
	skipEmpty := func() {
		state.mu.Lock()
		defer state.mu.Unlock()
		if st.Kind() == KindCount {
			// A count over nothing still has an answer — 0 — and must
			// report it regardless of where the optimizer placed the
			// emptying filter.
			state.scalars[st.Name()] = "0"
			state.details[st.Name()] = "0 of 0 (empty input)"
		} else {
			state.details[st.Name()] = detailSkippedEmpty
		}
	}

	env := &Env{Engine: rt.engineFor(), Budget: rt.budget, Tables: tables,
		chunk: cfg.newChunker(), stats: &stageStats{stage: st.Name()}, run: state,
		onErr: cfg.OnRecordError}
	defer env.stats.flush(rt.attr)

	// A dynamic side input (Side naming an earlier stage) needs the side
	// table whole, and the stage must keep consuming its own input while
	// the side stage finishes — otherwise a shared ancestor could deadlock
	// on backpressure. The classic answer is barrier mode: drain the main
	// input, await the side, run. The adaptive runtime restores overlap
	// for streamable stages instead: buffer the main input in a spillable
	// spool while the side materializes, then stream the spool plus the
	// live tail — the main path never stops consuming, and downstream
	// starts receiving as soon as the side table lands.
	dynamicSide := sideStage(p.specs, spec) >= 0

	streamer, ok := st.(Streamer)
	canStream := ok && streamer.CanStream() && !cfg.Materialized
	emit := func(r dataset.Record) error {
		out.table = append(out.table, r)
		if !out.send(ctx, r) {
			return ctx.Err()
		}
		return nil
	}

	if canStream && !dynamicSide {
		consumed, err := streamer.RunStream(workflow.TagStage(ctx, st.Name()), env, in, emit)
		out.consumed = consumed
		if err != nil {
			abort(err)
			return
		}
		// The stream may have ended because the producer failed; the
		// upstream error, not our partial output, is the truth then.
		<-up.done
		if up.err != nil {
			fail(up.err)
			return
		}
		if consumed == 0 {
			skipEmpty()
		}
		return
	}

	if canStream && dynamicSide && cfg.Adaptive {
		consumed, err := p.runStreamWithSide(ctx, cfg, env, outs, in, tables, streamer, st, spec, emit)
		out.consumed = consumed
		if err != nil {
			if propagated(err, outs, spec) {
				fail(err)
			} else {
				abort(err)
			}
			return
		}
		<-up.done
		if up.err != nil {
			fail(up.err)
			return
		}
		if consumed == 0 {
			skipEmpty()
		}
		return
	}

	start := time.Now()
	recs, err := drain(ctx, in, up)
	if err != nil {
		fail(err)
		return
	}
	out.consumed = len(recs)
	if dynamicSide {
		side := outs[spec.Side]
		select {
		case <-side.done:
		case <-ctx.Done():
			fail(ctx.Err())
			return
		}
		if side.err != nil {
			fail(side.err)
			return
		}
		env.Tables = overlaySide(tables, spec.Side, side.table)
	}
	wait := time.Since(start)
	if len(recs) == 0 {
		skipEmpty()
		return
	}
	work := time.Now()
	table, err := st.Run(workflow.TagStage(ctx, st.Name()), env, recs)
	if err != nil {
		abort(err)
		return
	}
	out.table = table
	for _, r := range table {
		if !out.send(ctx, r) {
			return
		}
	}
	env.stats.observe(wait, time.Since(work), len(recs))
}

// overlaySide copies the static-table map with one dynamic side table
// overlaid, so the shared map is never mutated.
func overlaySide(tables map[string][]dataset.Record, name string, side []dataset.Record) map[string][]dataset.Record {
	overlay := make(map[string][]dataset.Record, len(tables)+1)
	for k, v := range tables {
		overlay[k] = v
	}
	overlay[name] = side
	return overlay
}

// propagated reports whether err came from upstream (the side stage's
// failure or a cancellation) rather than this stage's own operator, so
// runStage records it without re-wrapping and without cancelling the run
// a second time.
func propagated(err error, outs map[string]*streamOut, spec StageSpec) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	if side := outs[spec.Side]; side != nil {
		// side.err is published by close(side.done); reading it before
		// that close is a data race with the side stage's goroutine, and
		// an error raised while the side is still running (e.g. a spool
		// failure) cannot have come from it anyway.
		select {
		case <-side.done:
			if side.err != nil && errors.Is(err, side.err) {
				return true
			}
		default:
		}
	}
	return false
}

// sideSpoolMem overrides the overlap spool's in-memory record capacity;
// 0 takes the spool default. Tests shrink it to force the disk-spill
// path without thousand-record inputs.
var sideSpoolMem = 0

// runStreamWithSide is the adaptive side-input overlap path: spool the
// main input while the dynamic side stage materializes, then stream the
// spooled prefix followed by the live channel through the stage. The
// spool keeps the main path consuming (no backpressure deadlock through a
// shared ancestor) without the full drain the barrier path pays, so
// downstream receives records as soon as the side table is ready.
func (p *Pipeline) runStreamWithSide(ctx context.Context, cfg ExecConfig, env *Env, outs map[string]*streamOut,
	in <-chan dataset.Record, tables map[string][]dataset.Record, streamer Streamer, st Stage, spec StageSpec,
	emit func(dataset.Record) error) (int, error) {
	side := outs[spec.Side]
	spool := newRecordSpool(sideSpoolMem)
	defer spool.Close()

	start := time.Now()
	inOpen := true
buffering:
	for {
		select {
		case r, ok := <-in:
			if !ok {
				inOpen = false
				break buffering
			}
			if err := spool.Append(r); err != nil {
				return spool.Len(), err
			}
		case <-side.done:
			break buffering
		case <-ctx.Done():
			return spool.Len(), ctx.Err()
		}
	}
	// The main input may have closed first; the side table is still the
	// gate for processing.
	select {
	case <-side.done:
	case <-ctx.Done():
		return spool.Len(), ctx.Err()
	}
	if side.err != nil {
		return spool.Len(), side.err
	}
	env.Tables = overlaySide(tables, spec.Side, side.table)
	// The spool-fill wait is time blocked on inputs, but not a processed
	// micro-batch — record it without inflating the chunk count.
	env.stats.addWait(time.Since(start))

	// Replay the spool, then pipe the live channel, on one merged stream
	// the stage consumes in chunks. The feeder owns its reads of the spool,
	// so this function must not return — and the deferred spool.Close must
	// not run — until the feeder has exited: fcancel unblocks it even when
	// the run's context is still live (e.g. RunStream failed mid-replay),
	// and the second defer waits for it. No goroutine can leak.
	merged := make(chan dataset.Record, cfg.chunkCap())
	feedErr := make(chan error, 1)
	feedDone := make(chan struct{})
	fctx, fcancel := context.WithCancel(ctx)
	defer func() {
		fcancel()
		<-feedDone
	}()
	go func() {
		defer close(feedDone)
		defer close(merged)
		for {
			r, ok, err := spool.Pop()
			if err != nil {
				feedErr <- err
				return
			}
			if !ok {
				break
			}
			select {
			case merged <- r:
			case <-fctx.Done():
				return
			}
		}
		for inOpen {
			select {
			case r, ok := <-in:
				if !ok {
					return
				}
				select {
				case merged <- r:
				case <-fctx.Done():
					return
				}
			case <-fctx.Done():
				return
			}
		}
	}()

	consumed, err := streamer.RunStream(workflow.TagStage(ctx, st.Name()), env, merged, emit)
	if err == nil {
		select {
		case ferr := <-feedErr:
			err = ferr
		default:
		}
	}
	return consumed, err
}

// FormatResult renders a run report as a text table: one row per stage
// with record flow and attributed spend, then scalars and the total.
func FormatResult(res *Result) string {
	out := fmt.Sprintf("%-14s %-11s %6s %6s %8s %8s %10s  %s\n",
		"Stage", "Kind", "In", "Out", "Calls", "Tokens", "Cost", "Detail")
	for _, s := range res.Stages {
		detail := s.Detail
		if s.Skipped > 0 {
			detail += fmt.Sprintf(" [skipped %d]", s.Skipped)
		}
		if s.Quarantined > 0 {
			detail += fmt.Sprintf(" [quarantined %d: %s]", s.Quarantined, strings.Join(s.QuarantineErrors, "; "))
		}
		out += fmt.Sprintf("%-14s %-11s %6d %6d %8d %8d %9.4f$  %s\n",
			s.Name, s.Kind, s.In, s.Out, s.Usage.Calls, s.Usage.Total(), s.Cost, detail)
	}
	for _, name := range sortedKeys(res.Scalars) {
		out += fmt.Sprintf("scalar %-8s = %s\n", name, res.Scalars[name])
	}
	out += fmt.Sprintf("total: %d calls, %d tokens, $%.4f\n",
		res.Usage.Calls, res.Usage.Total(), res.Cost)
	if r := res.Resilience; !r.Zero() || res.Skipped > 0 || res.Quarantined > 0 {
		out += fmt.Sprintf("resilience: %d retries, %d hedges (%d won), %d breaker opens, %d skipped, %d quarantined\n",
			r.Retries, r.Hedges, r.HedgeWins, r.BreakerOpens, res.Skipped, res.Quarantined)
	}
	return out
}

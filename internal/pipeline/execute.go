package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/token"
	"repro/internal/workflow"
)

// ExecConfig parameterises one pipeline run.
type ExecConfig struct {
	// Model answers every unit task.
	Model llm.Model
	// Embedder overrides the k-NN embedder (default embed.Default()).
	Embedder embed.Embedder
	// Budget caps the whole pipeline; nil runs unlimited (with full
	// accounting either way).
	Budget *workflow.Budget
	// Exec is the shared execution layer (cache + coalescer). Nil builds a
	// fresh layer for the run; pass a persistent one to share across runs.
	Exec *workflow.ExecLayer
	// Registry is the shared embedding-index registry. Nil builds a fresh
	// one for the run, which already spans every stage.
	Registry *embed.Registry
	// Batch packs up to this many unit tasks per envelope prompt (<= 1
	// disables batching).
	Batch int
	// Parallelism bounds concurrent LLM calls per operator (default 8).
	Parallelism int
	// Isolated reproduces naive sequential operator invocation: a fresh
	// engine per stage, each with the default private per-invocation
	// cache and no shared layer, registry, or batching. The experiments
	// use it as the baseline the optimized pipeline is measured against.
	Isolated bool
}

// Env is the execution environment handed to each stage.
type Env struct {
	// Engine runs the stage's operator.
	Engine *core.Engine
	// Budget is the shared whole-pipeline budget.
	Budget *workflow.Budget
	// Tables holds the static side tables (plus "source").
	Tables map[string][]dataset.Record

	run *runState
}

// runState collects scalar outputs and details across stages.
type runState struct {
	mu      sync.Mutex
	scalars map[string]string
	details map[string]string
}

func (e *Env) setScalar(stage, value string) {
	e.run.mu.Lock()
	defer e.run.mu.Unlock()
	e.run.scalars[stage] = value
}

func (e *Env) detail(stage, text string) {
	e.run.mu.Lock()
	defer e.run.mu.Unlock()
	e.run.details[stage] = text
}

// StageReport is the per-stage accounting of one run.
type StageReport struct {
	// Name and Kind identify the stage.
	Name, Kind string
	// In and Out count the records entering and leaving the stage.
	In, Out int
	// Usage is the real upstream spend attributed to this stage; summed
	// across stages it equals the pipeline total (cache hits, coalesced
	// followers, and batch co-riders are free and attributed nowhere).
	Usage token.Usage
	// Cost prices Usage at the model's rate.
	Cost float64
	// Detail is the stage's operator-specific summary.
	Detail string
}

// Result is the outcome of one pipeline run.
type Result struct {
	// Tables holds every stage's output table by stage name.
	Tables map[string][]dataset.Record
	// Scalars holds the scalar outputs of count/max stages by stage name.
	Scalars map[string]string
	// Stages reports per-stage accounting in pipeline order.
	Stages []StageReport
	// Usage and Cost total the run (equal to the sum over Stages).
	Usage token.Usage
	Cost  float64
}

// promise is one stage's eventually-available output table.
type promise struct {
	done  chan struct{}
	table []dataset.Record
	err   error
}

// Run executes the pipeline over the given tables (which must include
// "source"). Stages whose inputs are ready run concurrently — independent
// DAG branches overlap — and, unless Isolated, all of them stream their
// unit tasks through one shared engine: one execution layer, one
// embedding-index registry, one budget. Each stage's context is tagged
// with its name, so the returned report attributes the shared budget's
// spend stage by stage.
func (p *Pipeline) Run(ctx context.Context, cfg ExecConfig, tables map[string][]dataset.Record) (*Result, error) {
	source, ok := tables["source"]
	if !ok {
		return nil, fmt.Errorf("pipeline: tables lack %q", "source")
	}
	budget := cfg.Budget
	if budget == nil {
		budget = workflow.Unlimited()
	}
	attr := workflow.NewAttribution()
	baseOpts := []core.Option{core.WithBudget(budget), core.WithAttribution(attr)}
	if cfg.Parallelism > 0 {
		baseOpts = append(baseOpts, core.WithParallelism(cfg.Parallelism))
	}
	if cfg.Embedder != nil {
		baseOpts = append(baseOpts, core.WithEmbedder(cfg.Embedder))
	}
	engineFor := func() *core.Engine { return core.New(cfg.Model, baseOpts...) }
	if !cfg.Isolated {
		layer := cfg.Exec
		if layer == nil {
			layer = workflow.NewExecLayer()
		}
		registry := cfg.Registry
		if registry == nil {
			registry = embed.NewRegistry()
		}
		opts := append(append([]core.Option(nil), baseOpts...),
			core.WithExecutionLayer(layer), core.WithIndexRegistry(registry))
		if cfg.Batch > 1 {
			opts = append(opts, core.WithBatching(cfg.Batch))
		}
		shared := core.New(cfg.Model, opts...)
		engineFor = func() *core.Engine { return shared }
	}

	state := &runState{scalars: make(map[string]string), details: make(map[string]string)}
	promises := make(map[string]*promise, len(p.stages)+1)
	root := &promise{done: make(chan struct{}), table: source}
	close(root.done)
	promises["source"] = root
	for _, st := range p.stages {
		promises[st.Name()] = &promise{done: make(chan struct{})}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for _, st := range p.stages {
		wg.Add(1)
		go func(st Stage) {
			defer wg.Done()
			out := promises[st.Name()]
			defer close(out.done)
			in := promises[st.Input()]
			select {
			case <-in.done:
			case <-ctx.Done():
				out.err = ctx.Err()
				return
			}
			if in.err != nil {
				out.err = in.err // propagate the root cause, don't re-wrap per hop
				return
			}
			if len(in.table) == 0 {
				// An upstream filter emptied the table; downstream work is
				// vacuous, not an error. A count over nothing still has an
				// answer — 0 — and must report it regardless of where the
				// optimizer placed the emptying filter.
				state.mu.Lock()
				if st.Kind() == KindCount {
					state.scalars[st.Name()] = "0"
					state.details[st.Name()] = "0 of 0 (empty input)"
				} else {
					state.details[st.Name()] = "skipped: empty input"
				}
				state.mu.Unlock()
				return
			}
			env := &Env{Engine: engineFor(), Budget: budget, Tables: tables, run: state}
			table, err := st.Run(workflow.TagStage(ctx, st.Name()), env, in.table)
			if err != nil {
				out.err = fmt.Errorf("stage %q: %w", st.Name(), err)
				cancel()
				return
			}
			out.table = table
		}(st)
	}
	wg.Wait()

	// Surface the root cause: a failing stage cancels the run, so sibling
	// branches die with context errors that would otherwise mask the stage
	// error the caller actually needs.
	var cancelErr error
	for _, st := range p.stages {
		if err := promises[st.Name()].err; err != nil {
			if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			if cancelErr == nil {
				cancelErr = err
			}
		}
	}
	if cancelErr != nil {
		return nil, cancelErr
	}

	res := &Result{
		Tables:  make(map[string][]dataset.Record, len(p.stages)),
		Scalars: state.scalars,
	}
	for _, st := range p.stages {
		pr := promises[st.Name()]
		res.Tables[st.Name()] = pr.table
		res.Stages = append(res.Stages, StageReport{
			Name:   st.Name(),
			Kind:   st.Kind(),
			In:     len(promises[st.Input()].table),
			Out:    len(pr.table),
			Usage:  attr.Usage(st.Name()),
			Cost:   attr.Cost(st.Name()),
			Detail: state.details[st.Name()],
		})
	}
	res.Usage, res.Cost = attr.Total()
	return res, nil
}

// FormatResult renders a run report as a text table: one row per stage
// with record flow and attributed spend, then scalars and the total.
func FormatResult(res *Result) string {
	out := fmt.Sprintf("%-14s %-11s %6s %6s %8s %8s %10s  %s\n",
		"Stage", "Kind", "In", "Out", "Calls", "Tokens", "Cost", "Detail")
	for _, s := range res.Stages {
		out += fmt.Sprintf("%-14s %-11s %6d %6d %8d %8d %9.4f$  %s\n",
			s.Name, s.Kind, s.In, s.Out, s.Usage.Calls, s.Usage.Total(), s.Cost, s.Detail)
	}
	for _, name := range sortedKeys(res.Scalars) {
		out += fmt.Sprintf("scalar %-8s = %s\n", name, res.Scalars[name])
	}
	out += fmt.Sprintf("total: %d calls, %d tokens, $%.4f\n",
		res.Usage.Calls, res.Usage.Total(), res.Cost)
	return out
}

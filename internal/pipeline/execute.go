package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/token"
	"repro/internal/workflow"
)

// ExecConfig parameterises one pipeline run.
type ExecConfig struct {
	// Model answers every unit task.
	Model llm.Model
	// Embedder overrides the k-NN embedder (default embed.Default()).
	Embedder embed.Embedder
	// Budget caps the whole pipeline; nil runs unlimited (with full
	// accounting either way).
	Budget *workflow.Budget
	// Exec is the shared execution layer (cache + coalescer). Nil builds a
	// fresh layer for the run; pass a persistent one to share across runs —
	// and to let OptimizeProbed's selectivity probes pre-warm the cache the
	// run then reads.
	Exec *workflow.ExecLayer
	// Registry is the shared embedding-index registry. Nil builds a fresh
	// one for the run, which already spans every stage.
	Registry *embed.Registry
	// Attribution is the per-stage ledger the run records into; nil builds
	// a fresh one. Pass the same ledger (and Exec) to OptimizeProbed and
	// Run so probe spend appears in the run's report under
	// workflow.StageProbe and the report still sums to the budget total.
	// Use one Attribution per logical run — it accumulates.
	Attribution *workflow.Attribution
	// Batch packs up to this many unit tasks per envelope prompt (<= 1
	// disables batching).
	Batch int
	// Parallelism bounds concurrent LLM calls per operator (default 8).
	Parallelism int
	// Chunk bounds the records per streaming micro-batch (default
	// max(Batch, 8)). Larger chunks amortize per-invocation overhead;
	// smaller ones hand records downstream sooner.
	Chunk int
	// Materialized disables record-level streaming: every stage drains its
	// whole input before running — the pre-streaming executor behaviour.
	// Temperature-0 results are identical either way; the flag exists for
	// the streaming-vs-materialized wall-clock comparison in the
	// experiments.
	Materialized bool
	// Isolated reproduces naive sequential operator invocation: a fresh
	// engine per stage, each with the default private per-invocation
	// cache and no shared layer, registry, or batching. The experiments
	// use it as the baseline the optimized pipeline is measured against.
	Isolated bool
}

// chunkSize resolves the streaming micro-batch width.
func (cfg ExecConfig) chunkSize() int {
	if cfg.Chunk > 0 {
		return cfg.Chunk
	}
	if cfg.Batch > 8 {
		return cfg.Batch
	}
	return 8
}

// runtime binds one run's shared machinery: the budget, the attribution
// ledger, and the engine factory (one shared engine unless Isolated).
// OptimizeProbed builds the same runtime from the same config so probes
// run through the very cache and ledger the run will use.
type execRuntime struct {
	budget    *workflow.Budget
	attr      *workflow.Attribution
	engineFor func() *core.Engine
}

func (cfg ExecConfig) runtime() *execRuntime {
	budget := cfg.Budget
	if budget == nil {
		budget = workflow.Unlimited()
	}
	attr := cfg.Attribution
	if attr == nil {
		attr = workflow.NewAttribution()
	}
	baseOpts := []core.Option{core.WithBudget(budget), core.WithAttribution(attr)}
	if cfg.Parallelism > 0 {
		baseOpts = append(baseOpts, core.WithParallelism(cfg.Parallelism))
	}
	if cfg.Embedder != nil {
		baseOpts = append(baseOpts, core.WithEmbedder(cfg.Embedder))
	}
	rt := &execRuntime{budget: budget, attr: attr}
	rt.engineFor = func() *core.Engine { return core.New(cfg.Model, baseOpts...) }
	if !cfg.Isolated {
		layer := cfg.Exec
		if layer == nil {
			layer = workflow.NewExecLayer()
		}
		registry := cfg.Registry
		if registry == nil {
			registry = embed.NewRegistry()
		}
		opts := append(append([]core.Option(nil), baseOpts...),
			core.WithExecutionLayer(layer), core.WithIndexRegistry(registry))
		if cfg.Batch > 1 {
			opts = append(opts, core.WithBatching(cfg.Batch))
		}
		shared := core.New(cfg.Model, opts...)
		rt.engineFor = func() *core.Engine { return shared }
	}
	return rt
}

// Env is the execution environment handed to each stage.
type Env struct {
	// Engine runs the stage's operator.
	Engine *core.Engine
	// Budget is the shared whole-pipeline budget.
	Budget *workflow.Budget
	// Tables holds the side tables visible to the stage: the static tables
	// passed to Run (plus "source"), overlaid with any dynamic side table
	// materialized from an earlier stage's stream.
	Tables map[string][]dataset.Record

	chunk int
	run   *runState
}

// runState collects scalar outputs and details across stages.
type runState struct {
	mu      sync.Mutex
	scalars map[string]string
	details map[string]string
}

func (e *Env) setScalar(stage, value string) {
	e.run.mu.Lock()
	defer e.run.mu.Unlock()
	e.run.scalars[stage] = value
}

func (e *Env) detail(stage, text string) {
	e.run.mu.Lock()
	defer e.run.mu.Unlock()
	e.run.details[stage] = text
}

// StageReport is the per-stage accounting of one run.
type StageReport struct {
	// Name and Kind identify the stage. A run whose spec was rewritten by
	// OptimizeProbed additionally reports one synthetic row named
	// workflow.StageProbe ("__probe", kind "probe") carrying the
	// optimizer's selectivity-probe spend.
	Name, Kind string
	// In and Out count the records entering and leaving the stage.
	In, Out int
	// Usage is the real upstream spend attributed to this stage; summed
	// across stages (including the probe row) it equals the pipeline
	// total (cache hits, coalesced followers, and batch co-riders are
	// free and attributed nowhere).
	Usage token.Usage
	// Cost prices Usage at the model's rate.
	Cost float64
	// Detail is the stage's operator-specific summary.
	Detail string
}

// Result is the outcome of one pipeline run.
type Result struct {
	// Tables holds every stage's output table by stage name.
	Tables map[string][]dataset.Record
	// Scalars holds the scalar outputs of count/max stages by stage name.
	Scalars map[string]string
	// Stages reports per-stage accounting in pipeline order (preceded by
	// the synthetic probe row when the optimizer measured selectivities
	// against this run's Attribution).
	Stages []StageReport
	// Usage and Cost total the run (equal to the sum over Stages).
	Usage token.Usage
	Cost  float64
}

// streamOut is one stage's output viewed both as a stream and as a
// table: the owning goroutine sends each record to every subscribed
// consumer channel while collecting the full table for the Result (and
// for dynamic side-table consumers, who need it whole). done closes when
// the stage finishes; err is set before done closes on failure.
type streamOut struct {
	table    []dataset.Record
	err      error
	consumed int
	done     chan struct{}
	subs     []chan dataset.Record
}

// send delivers one record to every subscriber, honouring backpressure;
// it reports false when the run's context is cancelled.
func (o *streamOut) send(ctx context.Context, r dataset.Record) bool {
	for _, ch := range o.subs {
		select {
		case ch <- r:
		case <-ctx.Done():
			return false
		}
	}
	return true
}

func (o *streamOut) closeSubs() {
	for _, ch := range o.subs {
		close(ch)
	}
}

// drain collects the whole input stream — the barrier path — and then
// surfaces the upstream error if the stream ended because its producer
// failed.
func drain(ctx context.Context, in <-chan dataset.Record, up *streamOut) ([]dataset.Record, error) {
	var recs []dataset.Record
	for {
		select {
		case r, ok := <-in:
			if !ok {
				<-up.done
				if up.err != nil {
					return nil, up.err
				}
				return recs, nil
			}
			recs = append(recs, r)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// nextChunk assembles one streaming micro-batch: it blocks for the first
// record, then greedily tops up with whatever the producer has already
// buffered (up to n), so a fast upstream fills chunks and a slow one
// doesn't stall the stage. Returns more=false once the stream is
// exhausted; the final chunk may still carry records.
func nextChunk(ctx context.Context, in <-chan dataset.Record, n int) (chunk []dataset.Record, more bool, err error) {
	select {
	case r, ok := <-in:
		if !ok {
			return nil, false, nil
		}
		chunk = append(chunk, r)
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	for len(chunk) < n {
		select {
		case r, ok := <-in:
			if !ok {
				return chunk, false, nil
			}
			chunk = append(chunk, r)
		default:
			return chunk, true, nil
		}
	}
	return chunk, true, nil
}

// Run executes the pipeline over the given tables (which must include
// "source") as a streaming dataflow: every stage runs in its own
// goroutine, records flow between stages over bounded channels, and a
// per-record stage (filter, direct categorize, fixed-strategy impute,
// nested-loop join) processes micro-batches while its upstream is still
// emitting. Barrier stages — sort, max, count, resolve, planner-driven
// impute, any stage with a dynamic side input, or everything when
// cfg.Materialized is set — drain their input first; results are
// identical either way at temperature 0. Unless Isolated, all stages
// stream their unit tasks through one shared engine: one execution
// layer, one embedding-index registry, one budget. Each stage's context
// is tagged with its name, so the returned report attributes the shared
// budget's spend stage by stage.
func (p *Pipeline) Run(ctx context.Context, cfg ExecConfig, tables map[string][]dataset.Record) (*Result, error) {
	source, ok := tables["source"]
	if !ok {
		return nil, fmt.Errorf("pipeline: tables lack %q", "source")
	}
	rt := cfg.runtime()
	state := &runState{scalars: make(map[string]string), details: make(map[string]string)}

	outs := make(map[string]*streamOut, len(p.stages)+1)
	root := &streamOut{table: source, done: make(chan struct{})}
	close(root.done)
	outs["source"] = root
	for _, st := range p.stages {
		outs[st.Name()] = &streamOut{done: make(chan struct{})}
	}

	// Wire one bounded channel per main-input edge. Dynamic side-table
	// consumers are not subscribers: they read the producer's collected
	// table after its done closes.
	chunk := cfg.chunkSize()
	inputs := make(map[string]chan dataset.Record, len(p.stages))
	for _, st := range p.stages {
		ch := make(chan dataset.Record, chunk)
		inputs[st.Name()] = ch
		up := outs[st.Input()]
		up.subs = append(up.subs, ch)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup

	// Feed the materialized source table to its subscribers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer root.closeSubs()
		for _, r := range root.table {
			if !root.send(ctx, r) {
				return
			}
		}
	}()

	for i, st := range p.stages {
		wg.Add(1)
		go func(st Stage, spec StageSpec) {
			defer wg.Done()
			p.runStage(ctx, cancel, cfg, rt, state, outs, inputs[st.Name()], tables, st, spec)
		}(st, p.specs[i])
	}
	wg.Wait()

	// Surface the root cause: a failing stage cancels the run, so sibling
	// branches die with context errors that would otherwise mask the stage
	// error the caller actually needs.
	var cancelErr error
	for _, st := range p.stages {
		if err := outs[st.Name()].err; err != nil {
			if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			if cancelErr == nil {
				cancelErr = err
			}
		}
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	// An outer cancellation can end the source feeder (and with it every
	// stream) without any stage recording an error — e.g. a stage whose
	// in-flight chunk completed after the cancel sees only a closed
	// channel. Never report such a truncated run as success.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}

	res := &Result{
		Tables:  make(map[string][]dataset.Record, len(p.stages)),
		Scalars: state.scalars,
	}
	if u := rt.attr.Usage(workflow.StageProbe); !u.IsZero() {
		res.Stages = append(res.Stages, StageReport{
			Name:   workflow.StageProbe,
			Kind:   "probe",
			Usage:  u,
			Cost:   rt.attr.Cost(workflow.StageProbe),
			Detail: "optimizer selectivity probes",
		})
	}
	for _, st := range p.stages {
		out := outs[st.Name()]
		res.Tables[st.Name()] = out.table
		res.Stages = append(res.Stages, StageReport{
			Name:   st.Name(),
			Kind:   st.Kind(),
			In:     out.consumed,
			Out:    len(out.table),
			Usage:  rt.attr.Usage(st.Name()),
			Cost:   rt.attr.Cost(st.Name()),
			Detail: state.details[st.Name()],
		})
	}
	res.Usage, res.Cost = rt.attr.Total()
	return res, nil
}

// runStage drives one stage goroutine: resolve the side table, consume
// the input (streamed or drained), run the operator, and emit outputs.
func (p *Pipeline) runStage(ctx context.Context, cancel context.CancelFunc, cfg ExecConfig, rt *execRuntime,
	state *runState, outs map[string]*streamOut, in <-chan dataset.Record, tables map[string][]dataset.Record,
	st Stage, spec StageSpec) {
	out := outs[st.Name()]
	defer close(out.done)
	defer out.closeSubs()
	up := outs[st.Input()]

	// fail records a propagated (or cancellation) error without re-wrap;
	// abort records this stage's own failure and cancels the run.
	fail := func(err error) { out.err = err }
	abort := func(err error) {
		out.err = fmt.Errorf("stage %q: %w", st.Name(), err)
		cancel()
	}
	skipEmpty := func() {
		state.mu.Lock()
		defer state.mu.Unlock()
		if st.Kind() == KindCount {
			// A count over nothing still has an answer — 0 — and must
			// report it regardless of where the optimizer placed the
			// emptying filter.
			state.scalars[st.Name()] = "0"
			state.details[st.Name()] = "0 of 0 (empty input)"
		} else {
			state.details[st.Name()] = "skipped: empty input"
		}
	}

	env := &Env{Engine: rt.engineFor(), Budget: rt.budget, Tables: tables, chunk: cfg.chunkSize(), run: state}

	// A dynamic side input (Side naming an earlier stage) forces barrier
	// mode: the operator needs the side table whole, and we must keep
	// consuming our own input while the side stage finishes — otherwise a
	// shared ancestor could deadlock on backpressure. Draining first is
	// exactly that, so the order is: drain main input, await side, run.
	dynamicSide := sideStage(p.specs, spec) >= 0

	streamer, ok := st.(Streamer)
	if ok && streamer.CanStream() && !cfg.Materialized && !dynamicSide {
		emit := func(r dataset.Record) error {
			out.table = append(out.table, r)
			if !out.send(ctx, r) {
				return ctx.Err()
			}
			return nil
		}
		consumed, err := streamer.RunStream(workflow.TagStage(ctx, st.Name()), env, in, emit)
		out.consumed = consumed
		if err != nil {
			abort(err)
			return
		}
		// The stream may have ended because the producer failed; the
		// upstream error, not our partial output, is the truth then.
		<-up.done
		if up.err != nil {
			fail(up.err)
			return
		}
		if consumed == 0 {
			skipEmpty()
		}
		return
	}

	recs, err := drain(ctx, in, up)
	if err != nil {
		fail(err)
		return
	}
	out.consumed = len(recs)
	if dynamicSide {
		side := outs[spec.Side]
		select {
		case <-side.done:
		case <-ctx.Done():
			fail(ctx.Err())
			return
		}
		if side.err != nil {
			fail(side.err)
			return
		}
		// Overlay the materialized stage output without mutating the
		// shared static-table map.
		overlay := make(map[string][]dataset.Record, len(tables)+1)
		for k, v := range tables {
			overlay[k] = v
		}
		overlay[spec.Side] = side.table
		env.Tables = overlay
	}
	if len(recs) == 0 {
		skipEmpty()
		return
	}
	table, err := st.Run(workflow.TagStage(ctx, st.Name()), env, recs)
	if err != nil {
		abort(err)
		return
	}
	out.table = table
	for _, r := range table {
		if !out.send(ctx, r) {
			return
		}
	}
}

// FormatResult renders a run report as a text table: one row per stage
// with record flow and attributed spend, then scalars and the total.
func FormatResult(res *Result) string {
	out := fmt.Sprintf("%-14s %-11s %6s %6s %8s %8s %10s  %s\n",
		"Stage", "Kind", "In", "Out", "Calls", "Tokens", "Cost", "Detail")
	for _, s := range res.Stages {
		out += fmt.Sprintf("%-14s %-11s %6d %6d %8d %8d %9.4f$  %s\n",
			s.Name, s.Kind, s.In, s.Out, s.Usage.Calls, s.Usage.Total(), s.Cost, s.Detail)
	}
	for _, name := range sortedKeys(res.Scalars) {
		out += fmt.Sprintf("scalar %-8s = %s\n", name, res.Scalars[name])
	}
	out += fmt.Sprintf("total: %d calls, %d tokens, $%.4f\n",
		res.Usage.Calls, res.Usage.Total(), res.Cost)
	return out
}

package pipeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/dataset"
)

// spoolMemRecords is how many buffered records a spool holds in memory
// before overflowing to disk. Side-input overlap buffers the main input
// only while the side stage materializes, so most runs never spill.
const spoolMemRecords = 1024

// recordSpool is a FIFO buffer for the side-input overlap path: records
// append while the side stage is still materializing, then replay in
// arrival order once it finishes. The first memCap records stay in an
// in-memory ring; overflow spills to an unlinked temp file as JSON lines,
// so an arbitrarily large buffered stream costs bounded memory. Append
// and replay phases do not interleave: the executor appends until the
// side stage completes, then drains. A spool is owned by one goroutine.
type recordSpool struct {
	memCap int
	ring   []dataset.Record
	head   int // next record to pop from ring

	spill   *os.File
	w       *bufio.Writer
	r       *bufio.Scanner
	spilled int
}

func newRecordSpool(memCap int) *recordSpool {
	if memCap <= 0 {
		memCap = spoolMemRecords
	}
	return &recordSpool{memCap: memCap}
}

// spoolRecord is the spill-file serialization of one record.
type spoolRecord struct {
	ID     string   `json:"id"`
	Names  []string `json:"names"`
	Values []string `json:"values"`
}

// Append buffers one record, spilling to disk past the memory cap.
func (s *recordSpool) Append(r dataset.Record) error {
	if len(s.ring) < s.memCap {
		s.ring = append(s.ring, r)
		return nil
	}
	if s.spill == nil {
		f, err := os.CreateTemp("", "pipeline-spool-*.jsonl")
		if err != nil {
			return fmt.Errorf("spool: %w", err)
		}
		// Unlink immediately: the file lives as long as the handle, and a
		// crashed run leaves nothing behind.
		os.Remove(f.Name())
		s.spill = f
		s.w = bufio.NewWriter(f)
	}
	sr := spoolRecord{ID: r.ID}
	for _, f := range r.Fields {
		sr.Names = append(sr.Names, f.Name)
		sr.Values = append(sr.Values, f.Value)
	}
	line, err := json.Marshal(sr)
	if err != nil {
		return fmt.Errorf("spool: %w", err)
	}
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("spool: %w", err)
	}
	s.spilled++
	return nil
}

// Len returns how many records are buffered and not yet popped.
func (s *recordSpool) Len() int {
	return len(s.ring) - s.head + s.spilled
}

// Pop returns the oldest buffered record in FIFO order; ok is false when
// the spool is empty. The in-memory ring drains first (it holds the
// oldest records), then the spill file replays sequentially.
func (s *recordSpool) Pop() (dataset.Record, bool, error) {
	if s.head < len(s.ring) {
		r := s.ring[s.head]
		s.ring[s.head] = dataset.Record{} // release for GC
		s.head++
		return r, true, nil
	}
	if s.spilled == 0 {
		return dataset.Record{}, false, nil
	}
	if s.r == nil {
		if err := s.w.Flush(); err != nil {
			return dataset.Record{}, false, fmt.Errorf("spool: %w", err)
		}
		if _, err := s.spill.Seek(0, 0); err != nil {
			return dataset.Record{}, false, fmt.Errorf("spool: %w", err)
		}
		s.r = bufio.NewScanner(s.spill)
		s.r.Buffer(make([]byte, 64*1024), 16*1024*1024)
	}
	if !s.r.Scan() {
		if err := s.r.Err(); err != nil {
			return dataset.Record{}, false, fmt.Errorf("spool: %w", err)
		}
		return dataset.Record{}, false, fmt.Errorf("spool: spill file truncated (%d records unread)", s.spilled)
	}
	var sr spoolRecord
	if err := json.Unmarshal(s.r.Bytes(), &sr); err != nil {
		return dataset.Record{}, false, fmt.Errorf("spool: %w", err)
	}
	s.spilled--
	rec := dataset.Record{ID: sr.ID}
	for i := range sr.Names {
		rec.Fields = append(rec.Fields, dataset.Field{Name: sr.Names[i], Value: sr.Values[i]})
	}
	return rec, true, nil
}

// Close releases the spill file, if any.
func (s *recordSpool) Close() error {
	if s.spill == nil {
		return nil
	}
	err := s.spill.Close()
	s.spill, s.w, s.r = nil, nil, nil
	return err
}

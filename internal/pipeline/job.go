package pipeline

import (
	"context"

	"repro/internal/dataset"
)

// Job is a cancellable, awaitable handle on one asynchronous pipeline run.
// Start launches Run in its own goroutine; the handle then supports three
// interactions: Cancel aborts the run (the executor unwinds every stage
// goroutine and Run returns a context error), Done exposes completion as a
// channel for select loops, and Wait blocks for the outcome. A long-running
// service holds one Job per submitted pipeline so user-facing cancellation
// maps onto executor cancellation without the service owning any goroutine
// plumbing of its own.
type Job struct {
	cancel context.CancelFunc
	done   chan struct{}
	res    *Result
	err    error
}

// Start launches p.Run(ctx, cfg, tables) in a new goroutine and returns its
// handle. The run's context is derived from ctx, so cancelling ctx cancels
// the job just as Job.Cancel does.
func (p *Pipeline) Start(ctx context.Context, cfg ExecConfig, tables map[string][]dataset.Record) *Job {
	ctx, cancel := context.WithCancel(ctx)
	j := &Job{cancel: cancel, done: make(chan struct{})}
	go func() {
		defer cancel()
		j.res, j.err = p.Run(ctx, cfg, tables)
		close(j.done)
	}()
	return j
}

// Cancel aborts the run. The executor's streaming stages observe the
// cancellation at their next chunk boundary and unwind; Wait then returns
// the run's context error. Cancelling a finished job is a no-op.
func (j *Job) Cancel() { j.cancel() }

// Done returns a channel closed when the run has fully completed — every
// stage goroutine exited and the result (or error) recorded.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the run completes or ctx is cancelled. A ctx
// cancellation abandons only the wait, not the run: the job keeps
// executing and can be awaited again.
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result returns the outcome without blocking; ok is false while the run
// is still executing.
func (j *Job) Result() (res *Result, err error, ok bool) {
	select {
	case <-j.done:
		return j.res, j.err, true
	default:
		return nil, nil, false
	}
}

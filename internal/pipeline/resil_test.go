package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/resil"
	"repro/internal/workflow"
)

// poisonOn fails every call whose prompt mentions any of the given
// flavor names with a permanent fault; everything else answers "Yes".
func poisonOn(names ...string) llm.Func {
	return llm.Func{ModelName: "poison", Fn: func(_ context.Context, req llm.Request) (llm.Response, error) {
		for _, n := range names {
			if strings.Contains(req.Prompt, n) {
				return llm.Response{}, fmt.Errorf("%w: bad record", llm.ErrPermanent)
			}
		}
		return unit("Yes"), nil
	}}
}

func filterSpec(t *testing.T) *Pipeline {
	t.Helper()
	p, err := Compile(Spec{Stages: []StageSpec{
		{Name: "keep", Kind: KindFilter, Predicate: "p"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestQuarantineIsolatesPoisonedRecords(t *testing.T) {
	poisoned := dataset.FlavorNames()[2]
	p := filterSpec(t)
	res, err := p.Run(context.Background(), ExecConfig{
		Model:         poisonOn(poisoned),
		Chunk:         3,
		Parallelism:   1,
		OnRecordError: OnRecordQuarantine,
	}, flavorTables(6))
	if err != nil {
		t.Fatalf("quarantine run failed: %v", err)
	}
	if res.Quarantined != 1 || res.Skipped != 0 {
		t.Fatalf("quarantined %d skipped %d, want 1/0", res.Quarantined, res.Skipped)
	}
	var keep StageReport
	for _, s := range res.Stages {
		if s.Name == "keep" {
			keep = s
		}
	}
	if keep.Quarantined != 1 {
		t.Fatalf("stage quarantined = %d, want 1", keep.Quarantined)
	}
	if len(keep.QuarantineErrors) != 1 || !strings.Contains(keep.QuarantineErrors[0], "bad record") {
		t.Fatalf("quarantine evidence missing: %q", keep.QuarantineErrors)
	}
	if got := len(res.Tables["keep"]); got != 5 {
		t.Fatalf("output %d records, want 5 (6 in, 1 quarantined)", got)
	}
	for _, r := range res.Tables["keep"] {
		if v, _ := r.Get("name"); v == poisoned {
			t.Fatalf("poisoned record %q leaked into the output", poisoned)
		}
	}
}

func TestSkipModeDropsSilently(t *testing.T) {
	p := filterSpec(t)
	res, err := p.Run(context.Background(), ExecConfig{
		Model:         poisonOn(dataset.FlavorNames()[1], dataset.FlavorNames()[4]),
		Chunk:         4,
		Parallelism:   1,
		OnRecordError: OnRecordSkip,
	}, flavorTables(6))
	if err != nil {
		t.Fatalf("skip run failed: %v", err)
	}
	if res.Skipped != 2 || res.Quarantined != 0 {
		t.Fatalf("skipped %d quarantined %d, want 2/0", res.Skipped, res.Quarantined)
	}
	for _, s := range res.Stages {
		if len(s.QuarantineErrors) != 0 {
			t.Fatalf("skip mode kept error evidence: %q", s.QuarantineErrors)
		}
	}
	if got := len(res.Tables["keep"]); got != 4 {
		t.Fatalf("output %d records, want 4", got)
	}
}

func TestRecordErrorDefaultsToFailFast(t *testing.T) {
	p := filterSpec(t)
	_, err := p.Run(context.Background(), ExecConfig{
		Model: poisonOn(dataset.FlavorNames()[2]), Chunk: 3, Parallelism: 1,
	}, flavorTables(6))
	if err == nil || !strings.Contains(err.Error(), "bad record") {
		t.Fatalf("default mode did not fail fast: %v", err)
	}
	if _, err := p.Run(context.Background(), ExecConfig{
		Model: poisonOn(), OnRecordError: "explode",
	}, flavorTables(2)); err == nil || !strings.Contains(err.Error(), "unknown OnRecordError") {
		t.Fatalf("bad mode accepted: %v", err)
	}
}

func TestBarrierStageFailsFastUnderQuarantine(t *testing.T) {
	// A sort is a barrier: its answer depends on the whole table, so
	// degraded mode must not absorb its failure.
	model := llm.Func{ModelName: "m", Fn: func(_ context.Context, req llm.Request) (llm.Response, error) {
		if strings.Contains(req.Prompt, "rate the following item") {
			return llm.Response{}, fmt.Errorf("%w: ranking down", llm.ErrPermanent)
		}
		return unit("Yes"), nil
	}}
	p, err := Compile(Spec{Stages: []StageSpec{
		{Name: "keep", Kind: KindFilter, Predicate: "p"},
		{Name: "rank", Kind: KindSort, Field: "name", Criterion: "c", Strategy: "rating"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(context.Background(), ExecConfig{
		Model: model, Chunk: 2, Parallelism: 1, OnRecordError: OnRecordQuarantine,
	}, flavorTables(4))
	if err == nil || !strings.Contains(err.Error(), "ranking down") {
		t.Fatalf("barrier failure absorbed by quarantine: %v", err)
	}
}

func TestBudgetExhaustionNotQuarantined(t *testing.T) {
	p := filterSpec(t)
	budget := workflow.NewBudget(0, 2, 0) // two tokens: the first call exhausts it
	_, err := p.Run(context.Background(), ExecConfig{
		Model: poisonOn(), Budget: budget, Chunk: 2, Parallelism: 1,
		OnRecordError: OnRecordQuarantine,
	}, flavorTables(6))
	if err == nil || !errors.Is(err, workflow.ErrBudgetExhausted) {
		t.Fatalf("budget exhaustion under quarantine: %v, want ErrBudgetExhausted", err)
	}
}

// TestResilienceHealsTransientFaults: a policy below the cache retries
// transient faults away; the run succeeds, attribution counts each
// logical call once, and the physical retries surface in the ledger's
// resilience counters.
func TestResilienceHealsTransientFaults(t *testing.T) {
	var mu sync.Mutex
	attempts := map[string]int{}
	inner := llm.Func{ModelName: "flaky", Fn: func(_ context.Context, req llm.Request) (llm.Response, error) {
		mu.Lock()
		attempts[req.Prompt]++
		n := attempts[req.Prompt]
		mu.Unlock()
		if n <= 2 {
			return llm.Response{}, fmt.Errorf("%w: warming up", llm.ErrTransient)
		}
		return unit("Yes"), nil
	}}
	p := filterSpec(t)
	attr := workflow.NewAttribution()
	res, err := p.Run(context.Background(), ExecConfig{
		Model:       inner,
		Attribution: attr,
		Chunk:       2,
		Parallelism: 1,
		Resilience:  &resil.Policy{MaxAttempts: 3, BaseBackoff: time.Microsecond},
	}, flavorTables(4))
	if err != nil {
		t.Fatalf("resilient run failed: %v", err)
	}
	if res.Resilience.Retries == 0 {
		t.Fatal("no retries recorded despite transient faults")
	}
	if got := attr.Resilience(); got != res.Resilience {
		t.Fatalf("ledger resilience %+v != result %+v", got, res.Resilience)
	}
	// Attribution still sums exactly: per-stage usage == run total, and
	// the logical call count is one per distinct ask (4 records), not one
	// per physical attempt (12).
	var sum int
	for _, s := range res.Stages {
		sum += s.Usage.Calls
	}
	if sum != res.Usage.Calls {
		t.Fatalf("stage calls %d != total %d", sum, res.Usage.Calls)
	}
	if res.Usage.Calls != 4 {
		t.Fatalf("logical calls = %d, want 4 (retries must not be billed)", res.Usage.Calls)
	}
	if len(res.Tables["keep"]) != 4 {
		t.Fatalf("output %d records, want 4", len(res.Tables["keep"]))
	}
}

// TestFaultlessRunByteIdentical: with a zero fault plan and a live
// resilience policy, results are byte-identical to a bare run — the
// wrappers are no-ops when nothing fires.
func TestFaultlessRunByteIdentical(t *testing.T) {
	run := func(wrap bool) *Result {
		p := filterSpec(t)
		model := llm.Model(llm.Func{ModelName: "plain", Fn: func(_ context.Context, req llm.Request) (llm.Response, error) {
			return unit("Yes"), nil
		}})
		cfg := ExecConfig{Model: model, Chunk: 2, Parallelism: 1}
		if wrap {
			cfg.Model = llm.WithFaults(model, llm.FaultPlan{})
			cfg.Resilience = &resil.Policy{MaxAttempts: 3, BreakerThreshold: 5, HedgeAfter: time.Hour}
			cfg.OnRecordError = OnRecordQuarantine
		}
		res, err := p.Run(context.Background(), cfg, flavorTables(6))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, wrapped := run(false), run(true)
	if !wrapped.Resilience.Zero() || wrapped.Quarantined != 0 || wrapped.Skipped != 0 {
		t.Fatalf("faultless wrapped run reported activity: %+v q=%d s=%d",
			wrapped.Resilience, wrapped.Quarantined, wrapped.Skipped)
	}
	if fmt.Sprint(plain.Tables["keep"]) != fmt.Sprint(wrapped.Tables["keep"]) {
		t.Fatal("faultless wrapped tables differ from bare run")
	}
	if plain.Usage != wrapped.Usage {
		t.Fatalf("usage differs: %+v vs %+v", plain.Usage, wrapped.Usage)
	}
}

// TestBreakerOpenAbortsNotQuarantines: an open breaker poisons every
// record, so quarantine mode must abort instead of dropping the stream
// record by record.
func TestBreakerOpenAbortsNotQuarantines(t *testing.T) {
	inner := llm.Func{ModelName: "down", Fn: func(context.Context, llm.Request) (llm.Response, error) {
		return llm.Response{}, fmt.Errorf("%w: outage", llm.ErrTransient)
	}}
	p := filterSpec(t)
	res, err := p.Run(context.Background(), ExecConfig{
		Model: inner, Chunk: 2, Parallelism: 1,
		Resilience:    &resil.Policy{MaxAttempts: 1, BreakerThreshold: 1, BreakerCooldown: time.Minute},
		OnRecordError: OnRecordQuarantine,
	}, flavorTables(6))
	if err == nil {
		t.Fatalf("run absorbed a full outage: quarantined %d", res.Quarantined)
	}
	if !errors.Is(err, resil.ErrBreakerOpen) && !errors.Is(err, llm.ErrTransient) {
		t.Fatalf("unexpected error: %v", err)
	}
}

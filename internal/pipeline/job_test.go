package pipeline

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
)

// TestJobStartWaitResult pins the handle's contract: Result reports not-ok
// while the run is in flight, an abandoned Wait leaves the run alive, and
// the eventual outcome is exactly what a synchronous Run returns.
func TestJobStartWaitResult(t *testing.T) {
	release := make(chan struct{})
	gate := func(ctx context.Context, req llm.Request) (llm.Response, error) {
		select {
		case <-release:
			return unit("Yes"), nil
		case <-ctx.Done():
			return llm.Response{}, ctx.Err()
		}
	}
	spec := Spec{Stages: []StageSpec{{Name: "keep", Kind: KindFilter, Predicate: "p"}}}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	j := p.Start(context.Background(), ExecConfig{Model: llm.Func{ModelName: "gate", Fn: gate}}, flavorTables(4))
	if _, _, ok := j.Result(); ok {
		t.Fatal("Result reported ok while the model was still blocked")
	}
	// Abandoning a Wait must not abandon the run.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := j.Wait(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait with a dead context returned %v, want context.Canceled", err)
	}
	if _, _, ok := j.Result(); ok {
		t.Fatal("abandoning a Wait finished the job")
	}

	close(release)
	got, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res, err2, ok := j.Result()
	if !ok || err2 != nil || res != got {
		t.Fatalf("Result after done = (%p, %v, %v), want the Wait outcome", res, err2, ok)
	}

	// The async outcome must match a synchronous run of the same spec on
	// an equivalent (now-unblocked) model.
	want, err := p.Run(context.Background(), ExecConfig{Model: llm.Func{ModelName: "gate", Fn: gate}}, flavorTables(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Tables, want.Tables) || !reflect.DeepEqual(got.Scalars, want.Scalars) {
		t.Fatalf("job result diverges from synchronous Run:\njob: %v %v\nrun: %v %v",
			got.Tables, got.Scalars, want.Tables, want.Scalars)
	}
}

// TestJobCancelNoLeak cancels a job mid-call: Wait must surface the
// context error, Done must close, and every stage goroutine must exit.
// Run with -race in CI.
func TestJobCancelNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	started := make(chan struct{})
	var once sync.Once
	model := llm.Func{ModelName: "hang", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return llm.Response{}, ctx.Err()
	}}
	spec := Spec{Stages: []StageSpec{
		{Name: "keep", Kind: KindFilter, Predicate: "p"},
		{Name: "cat", Kind: KindCategorize, Categories: []string{"a"}},
	}}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	j := p.Start(context.Background(), ExecConfig{Model: model, Chunk: 1, Parallelism: 2}, flavorTables(6))
	<-started
	j.Cancel()

	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Done never closed after Cancel")
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled job's error = %v, want context.Canceled", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after Cancel: %d before, %d after\n%s", before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

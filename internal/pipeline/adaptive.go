package pipeline

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workflow"
)

// The adaptive streaming runtime (ExecConfig.Adaptive) tunes a running
// plan from live observations, in three coordinated pieces:
//
//   - adaptive chunk sizing: each stage's micro-batch width self-tunes
//     between ChunkMin and ChunkMax from the observed balance of queue
//     wait (blocked assembling input) versus service time (processing a
//     chunk), instead of the fixed Chunk knob;
//   - side-input overlap: a streamable stage with a dynamic side input
//     buffers its main input in a spillable spool while the side stage
//     materializes, then streams — instead of draining first (execute.go);
//   - mid-run re-optimization: runs of adjacent commutable filter stages
//     execute as one segment whose internal order is revised at chunk
//     boundaries as observed keep rates refine the optimizer's probed or
//     hinted selectivity estimates (this file).
//
// All three leave temperature-0 results byte-identical to the fixed plan;
// they only change when work happens and how much of it there is.

// chunker decides the next micro-batch width for one stage's stream and
// learns from how each chunk went. Implementations are owned by a single
// stage goroutine and need no locking.
type chunker interface {
	// size returns the width the next chunk should aim for.
	size() int
	// observe reports one processed chunk: how long the stage was blocked
	// assembling it (wait), how long processing plus downstream emission
	// took (service), and how many records it carried.
	observe(wait, service time.Duration, records int)
}

// fixedChunker is the pre-adaptive behaviour: a constant width.
type fixedChunker int

func (c fixedChunker) size() int                         { return int(c) }
func (c fixedChunker) observe(_, _ time.Duration, _ int) {}

// chunkBalanceFactor is the dead band of the adaptive width controller: a
// chunk grows only when service time dominates queue wait by this factor
// (input is plentiful — amortize per-chunk overhead over more records),
// and shrinks only when wait dominates service by the same factor (the
// stage is starved — hand records downstream sooner rather than idling to
// fill a wide chunk). In between, the width holds steady.
const chunkBalanceFactor = 4

// adaptiveChunker doubles or halves the width between floor and ceiling
// based on the wait/service balance. Temperature-0 results are identical
// for every width sequence (chunked stages are per-record), so the
// controller is free to chase throughput without a correctness cost.
type adaptiveChunker struct {
	min, max, cur int
}

func newAdaptiveChunker(min, max, start int) *adaptiveChunker {
	if min <= 0 {
		min = 1
	}
	if max < min {
		max = min
	}
	if start < min {
		start = min
	}
	if start > max {
		start = max
	}
	return &adaptiveChunker{min: min, max: max, cur: start}
}

func (c *adaptiveChunker) size() int { return c.cur }

func (c *adaptiveChunker) observe(wait, service time.Duration, records int) {
	if records == 0 {
		return
	}
	switch {
	case wait*chunkBalanceFactor < service && c.cur < c.max:
		c.cur *= 2
		if c.cur > c.max {
			c.cur = c.max
		}
	case service*chunkBalanceFactor < wait && c.cur > c.min:
		c.cur /= 2
		if c.cur < c.min {
			c.cur = c.min
		}
	}
}

// stageStats accumulates one stage's streaming timings; the stage
// goroutine owns it and flushes the total into the run's Attribution
// ledger when the stage finishes, where the run report reads it back.
type stageStats struct {
	stage string
	t     workflow.StageTiming
}

func (s *stageStats) observe(wait, service time.Duration, records int) {
	if s == nil {
		return
	}
	s.t.Wait += wait
	s.t.Service += service
	s.t.Chunks++
	s.t.Records += records
}

// addWait and addService accumulate time outside any chunk — the
// side-overlap buffering wait, a segment tail's emission backpressure —
// without inflating the chunk count.
func (s *stageStats) addWait(d time.Duration) {
	if s != nil {
		s.t.Wait += d
	}
}

func (s *stageStats) addService(d time.Duration) {
	if s != nil {
		s.t.Service += d
	}
}

func (s *stageStats) flush(attr *workflow.Attribution) {
	if s == nil || s.t == (workflow.StageTiming{}) {
		return
	}
	attr.ObserveTiming(s.stage, s.t)
}

// selectivityPriorWeight is how many pseudo-records the optimizer's
// estimate (a probe measurement or a spec hint) counts for when blended
// with live observations — the probe's default sample size, so a probed
// estimate and an equally sized observation weigh the same.
const selectivityPriorWeight = 8

// adaptiveSegments finds the maximal runs of ≥2 consecutive filter stages
// the adaptive executor may re-order mid-run: each link must be the sole
// consumer (main input or side table) of its predecessor — the same
// sole-consumer rule the static optimizer's pushdown uses — and every
// member is a filter, which commutes record-wise with any other filter
// (filters write no fields, and every filter policy decides per item, so
// the set surviving the run is order-independent at temperature 0).
// Returned segments index into the normalized spec slice.
func adaptiveSegments(specs []StageSpec) [][]int {
	var segments [][]int
	for i := 0; i < len(specs); i++ {
		if specs[i].Kind != KindFilter {
			continue
		}
		run := []int{i}
		for j := i + 1; j < len(specs); j++ {
			prev := specs[run[len(run)-1]]
			if specs[j].Kind != KindFilter || specs[j].Input != prev.Name {
				break
			}
			if cs := consumers(specs, prev.Name); len(cs) != 1 {
				break
			}
			run = append(run, j)
		}
		if len(run) >= 2 {
			segments = append(segments, run)
		}
		i = run[len(run)-1]
	}
	return segments
}

// segMember is one filter inside a running segment, with its live
// selectivity evidence.
type segMember struct {
	st   filterStage
	spec StageSpec
	out  *streamOut

	seen, kept, asks int
}

// estimate blends the member's prior selectivity (probe measurement or
// spec hint; 0.5 when hintless) with what the segment has observed so far.
func (m *segMember) estimate() float64 {
	return core.RefineSelectivity(m.spec.Selectivity, selectivityPriorWeight, m.seen, m.kept)
}

// segmentOrder returns member indices sorted most-selective-first by the
// current estimates, stable on spec position so ties keep the user's (or
// the static optimizer's) order and the result is deterministic for a
// given evidence state.
func segmentOrder(members []*segMember) []int {
	order := make([]int, len(members))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return members[order[a]].estimate() < members[order[b]].estimate()
	})
	return order
}

func sameOrder(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runSegment drives one commutable filter segment as a single streaming
// unit: every chunk flows through all member filters in the segment's
// current order, evidence accumulates per member, and at each chunk
// boundary the order may be revised for chunks not yet started — in-flight
// work is never re-ordered, and the segment's final output is identical to
// any fixed order at temperature 0. Each member's operator calls run under
// its own stage tag, so per-stage attribution is preserved.
func (p *Pipeline) runSegment(ctx context.Context, cancel context.CancelFunc, cfg ExecConfig, rt *execRuntime,
	state *runState, outs map[string]*streamOut, in <-chan dataset.Record, tables map[string][]dataset.Record,
	idxs []int) {
	members := make([]*segMember, len(idxs))
	for i, j := range idxs {
		spec := p.specs[j]
		members[i] = &segMember{st: p.stages[j].(filterStage), spec: spec, out: outs[spec.Name]}
	}
	tail := members[len(members)-1]
	defer func() {
		for _, m := range members {
			close(m.out.done)
			m.out.closeSubs()
		}
	}()
	up := outs[members[0].spec.Input]
	env := &Env{Engine: rt.engineFor(), Budget: rt.budget, Tables: tables,
		chunk: cfg.newChunker(), run: state}
	// One timing ledger per member: each filter's service time and record
	// flow land under its own stage name, chunk-assembly wait under
	// whichever member ran first (it is the one actually blocked on
	// upstream), and emission backpressure under the tail.
	stats := make([]*stageStats, len(members))
	for i, m := range members {
		stats[i] = &stageStats{stage: m.spec.Name}
	}
	defer func() {
		for _, s := range stats {
			s.flush(rt.attr)
		}
	}()

	order := segmentOrder(members)
	consumed, reorders := 0, 0
	for {
		start := time.Now()
		chunk, more, err := nextChunk(ctx, in, env.chunk.size())
		wait := time.Since(start)
		if err != nil {
			members[0].out.err = err
			return
		}
		consumed += len(chunk)
		if len(chunk) > 0 {
			work := time.Now()
			recs := chunk
			for pos, mi := range order {
				m := members[mi]
				if len(recs) == 0 {
					break
				}
				eval := time.Now()
				kept, asks, err := m.st.filter(workflow.TagStage(ctx, m.spec.Name), env, recs)
				if err != nil {
					m.out.err = fmt.Errorf("stage %q: %w", m.spec.Name, err)
					cancel()
					return
				}
				memberWait := time.Duration(0)
				if pos == 0 {
					memberWait = wait
				}
				stats[mi].observe(memberWait, time.Since(eval), len(recs))
				m.seen += len(recs)
				m.kept += len(kept)
				m.asks += asks
				m.out.consumed += len(recs)
				if m != tail {
					m.out.table = append(m.out.table, kept...)
				}
				recs = kept
			}
			emitStart := time.Now()
			for _, r := range recs {
				tail.out.table = append(tail.out.table, r)
				if !tail.out.send(ctx, r) {
					members[0].out.err = ctx.Err()
					return
				}
			}
			stats[len(members)-1].addService(time.Since(emitStart))
			env.chunk.observe(wait, time.Since(work), len(chunk))
			// Chunk boundary: revise the order for not-yet-started chunks
			// from the refined estimates. The chunk just finished ran whole
			// under the old order — in-flight work is never re-ordered.
			if next := segmentOrder(members); !sameOrder(next, order) {
				order = next
				reorders++
			}
		}
		if !more {
			break
		}
	}
	<-up.done
	if up.err != nil {
		members[0].out.err = up.err
		return
	}
	if consumed == 0 {
		state.mu.Lock()
		for _, m := range members {
			state.details[m.spec.Name] = detailSkippedEmpty
		}
		state.mu.Unlock()
		return
	}
	for _, m := range members {
		detail := filterDetail(m.kept, m.seen, m.asks)
		if m == tail {
			detail += fmt.Sprintf("; adaptive segment of %d filters, order revised %d times", len(members), reorders)
		}
		env.detail(m.spec.Name, detail)
	}
}

package pipeline

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

// spoolTestRecord builds a distinguishable record so FIFO violations are
// attributable to a specific position.
func spoolTestRecord(i int) dataset.Record {
	return dataset.Record{
		ID: fmt.Sprintf("rec-%06d", i),
		Fields: []dataset.Field{
			{Name: "seq", Value: fmt.Sprintf("%d", i)},
			{Name: "payload", Value: fmt.Sprintf("value for record %d", i)},
		},
	}
}

// drainSpool pops every record, checking FIFO order against the append
// sequence and that Len counts down correctly.
func drainSpool(t *testing.T, s *recordSpool, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if got := s.Len(); got != n-i {
			t.Fatalf("Len() = %d before pop %d of %d, want %d", got, i, n, n-i)
		}
		r, ok, err := s.Pop()
		if err != nil {
			t.Fatalf("Pop %d of %d: %v", i, n, err)
		}
		if !ok {
			t.Fatalf("Pop %d of %d: spool empty early", i, n)
		}
		want := spoolTestRecord(i)
		if r.ID != want.ID {
			t.Fatalf("pop %d returned %q, want %q (FIFO order broken)", i, r.ID, want.ID)
		}
		if len(r.Fields) != len(want.Fields) {
			t.Fatalf("pop %d returned %d fields, want %d", i, len(r.Fields), len(want.Fields))
		}
		for j, f := range r.Fields {
			if f != want.Fields[j] {
				t.Fatalf("pop %d field %d = %+v, want %+v", i, j, f, want.Fields[j])
			}
		}
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len() = %d after draining, want 0", got)
	}
	if _, ok, err := s.Pop(); err != nil || ok {
		t.Fatalf("Pop on drained spool = (ok %v, err %v), want (false, nil)", ok, err)
	}
}

// countSpoolFiles counts pipeline-spool spill files visible in the temp
// directory. The spool unlinks its spill file the moment it is created,
// so the count should be zero even while a spilled spool is live.
func countSpoolFiles(t *testing.T) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(os.TempDir(), "pipeline-spool-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

// TestSpoolSpillBoundary exercises record counts straddling the
// in-memory cap: empty, one short of the cap, exactly at it, one past
// it (first spilled record), and far past it. Every count must replay
// in FIFO order and leave no spill file behind.
func TestSpoolSpillBoundary(t *testing.T) {
	for _, n := range []int{0, 1023, 1024, 1025, 4096} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			s := newRecordSpool(spoolMemRecords)
			for i := 0; i < n; i++ {
				if err := s.Append(spoolTestRecord(i)); err != nil {
					t.Fatalf("Append %d: %v", i, err)
				}
			}
			if got := countSpoolFiles(t); got != 0 {
				t.Fatalf("%d spill files visible in temp dir while spool is live, want 0 (spill must be unlinked at creation)", got)
			}
			drainSpool(t, s, n)
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if got := countSpoolFiles(t); got != 0 {
				t.Fatalf("%d spill files left in temp dir after Close, want 0", got)
			}
		})
	}
}

// TestSpoolCloseWithoutDrain pins that Close releases the spill handle
// even when spilled records were never replayed — the cancellation path.
func TestSpoolCloseWithoutDrain(t *testing.T) {
	s := newRecordSpool(4)
	for i := 0; i < 10; i++ {
		if err := s.Append(spoolTestRecord(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close with 6 undrained spilled records: %v", err)
	}
	if got := countSpoolFiles(t); got != 0 {
		t.Fatalf("%d spill files left after abandoning a spilled spool, want 0", got)
	}
	// Close is idempotent once the handle is released.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestSpoolDefaultCap pins that a non-positive cap falls back to the
// package constant rather than spilling every record.
func TestSpoolDefaultCap(t *testing.T) {
	for _, cap := range []int{0, -3} {
		s := newRecordSpool(cap)
		if s.memCap != spoolMemRecords {
			t.Fatalf("newRecordSpool(%d).memCap = %d, want %d", cap, s.memCap, spoolMemRecords)
		}
	}
}

// FuzzSpoolFIFO drives arbitrary record counts and memory caps through
// the append-then-drain lifecycle. The invariants: records replay in
// exact FIFO order with fields intact, Len tracks the backlog, and no
// spill file survives Close. Seeds pin the spill boundary; the fuzzer
// explores everything else. Run with: go test -fuzz FuzzSpoolFIFO ./internal/pipeline/
func FuzzSpoolFIFO(f *testing.F) {
	f.Add(uint16(0), uint16(8))
	f.Add(uint16(1023), uint16(1024))
	f.Add(uint16(1024), uint16(1024))
	f.Add(uint16(1025), uint16(1024))
	f.Add(uint16(100), uint16(0)) // non-positive cap falls back to the default
	f.Add(uint16(7), uint16(1))
	f.Fuzz(func(t *testing.T, nRaw, capRaw uint16) {
		n := int(nRaw % 2048) // keep disk traffic bounded per exec
		memCap := int(capRaw % 2048)
		s := newRecordSpool(memCap)
		defer s.Close()
		for i := 0; i < n; i++ {
			if err := s.Append(spoolTestRecord(i)); err != nil {
				t.Fatalf("Append %d (cap %d): %v", i, memCap, err)
			}
		}
		if got := s.Len(); got != n {
			t.Fatalf("Len() = %d after %d appends (cap %d), want %d", got, n, memCap, n)
		}
		drainSpool(t, s, n)
		if err := s.Close(); err != nil {
			t.Fatalf("Close (cap %d): %v", memCap, err)
		}
	})
}

package pipeline

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/llm/sim"
)

// TestRecordSpoolSpill pins the spillable buffer's FIFO contract across
// the memory/disk boundary: records past the in-memory cap round-trip
// through the spill file byte-identically and in arrival order.
func TestRecordSpoolSpill(t *testing.T) {
	spool := newRecordSpool(4)
	defer spool.Close()
	var want []dataset.Record
	for i := 0; i < 11; i++ {
		r := dataset.Record{ID: fmt.Sprintf("r%02d", i), Fields: []dataset.Field{
			{Name: "name", Value: fmt.Sprintf("item %d", i)},
			{Name: "note", Value: `quotes " and | separators`},
		}}
		want = append(want, r)
		if err := spool.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if spool.Len() != 11 {
		t.Fatalf("Len = %d, want 11", spool.Len())
	}
	var got []dataset.Record
	for {
		r, ok, err := spool.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, r)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("spool replay differs:\nwant %v\ngot  %v", want, got)
	}
	if spool.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", spool.Len())
	}
}

// TestAdaptiveChunkerTunes pins the width controller: service-dominated
// chunks grow toward the ceiling, wait-dominated chunks shrink toward
// the floor, and a balanced load holds steady.
func TestAdaptiveChunkerTunes(t *testing.T) {
	c := newAdaptiveChunker(2, 32, 8)
	for i := 0; i < 10; i++ {
		c.observe(time.Millisecond, 100*time.Millisecond, c.size())
	}
	if c.size() != 32 {
		t.Fatalf("service-dominated chunker at %d, want ceiling 32", c.size())
	}
	for i := 0; i < 10; i++ {
		c.observe(100*time.Millisecond, time.Millisecond, c.size())
	}
	if c.size() != 2 {
		t.Fatalf("wait-dominated chunker at %d, want floor 2", c.size())
	}
	before := c.size()
	c.observe(10*time.Millisecond, 10*time.Millisecond, before)
	if c.size() != before {
		t.Fatalf("balanced chunk moved the width %d -> %d", before, c.size())
	}
	c.observe(0, 0, 0) // empty chunk: no evidence, no move
	if c.size() != before {
		t.Fatal("empty chunk moved the width")
	}
}

// TestAdaptiveSegments pins segment detection: adjacent sole-consumer
// filters group, anything else breaks the chain.
func TestAdaptiveSegments(t *testing.T) {
	filter := func(name, input string) StageSpec {
		return StageSpec{Name: name, Kind: KindFilter, Predicate: "p", Input: input}
	}
	chain, err := normalize([]StageSpec{
		filter("a", "source"), filter("b", "a"), filter("c", "b"),
		{Name: "cat", Kind: KindCategorize, Categories: []string{"x"}, Input: "c"},
		filter("d", "cat"), filter("e", "d"),
	})
	if err != nil {
		t.Fatal(err)
	}
	segs := adaptiveSegments(chain)
	if len(segs) != 2 || !reflect.DeepEqual(segs[0], []int{0, 1, 2}) || !reflect.DeepEqual(segs[1], []int{4, 5}) {
		t.Fatalf("segments = %v, want [[0 1 2] [4 5]]", segs)
	}

	// A second consumer — main input or side table — breaks the chain.
	branched, err := normalize([]StageSpec{
		filter("a", "source"), filter("b", "a"),
		{Name: "match", Kind: KindJoin, Side: "a", Strategy: "nested-loop", Input: "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if segs := adaptiveSegments(branched); len(segs) != 0 {
		t.Fatalf("filter with a side-consumed output joined a segment: %v", segs)
	}

	single, err := normalize([]StageSpec{filter("a", "source")})
	if err != nil {
		t.Fatal(err)
	}
	if segs := adaptiveSegments(single); len(segs) != 0 {
		t.Fatalf("lone filter formed a segment: %v", segs)
	}
}

// TestAdaptiveMatchesMaterialized is the tentpole property test: on the
// sim model, an adaptive run — self-tuned chunks, segment replanning —
// produces byte-identical final tables and scalars to a materialized run
// and to fixed-chunk streaming runs at widths 1, 3, and 16, across
// several adaptive bounds.
func TestAdaptiveMatchesMaterialized(t *testing.T) {
	tables, _ := SourceSpec{Dataset: "restaurants", Records: 14, Train: 30, Seed: 9}.Tables()
	for i, r := range tables["source"] {
		tables["source"][i] = r.WithoutField("city")
	}
	// Two adjacent hintless filters form a replannable segment; the
	// surrounding stages exercise barrier (resolve, count) and streaming
	// (impute) paths under adaptive chunking.
	spec := Spec{Stages: []StageSpec{
		{Name: "entities", Kind: KindResolve, Strategy: "pairwise", InvariantFields: []string{"type"}},
		{Name: "served", Kind: KindFilter, Field: "type", Predicate: "the restaurant serves food"},
		{Name: "named", Kind: KindFilter, Field: "name", Predicate: "the name is pronounceable"},
		{Name: "city", Kind: KindImpute, TargetField: "city", Side: "train", Strategy: "hybrid", Neighbors: 3, Examples: 2},
		{Name: "n", Kind: KindCount, Field: "city", Predicate: "q", Strategy: "per-item"},
	}}
	run := func(cfg ExecConfig) *Result {
		t.Helper()
		p, err := Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Model = sim.NewNamed("sim-gpt-3.5-turbo")
		res, err := p.Run(context.Background(), cfg, tables)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(ExecConfig{Materialized: true})
	for _, chunk := range []int{1, 3, 16} {
		got := run(ExecConfig{Chunk: chunk})
		if !reflect.DeepEqual(want.Tables, got.Tables) || !reflect.DeepEqual(want.Scalars, got.Scalars) {
			t.Fatalf("fixed chunk %d differs from materialized", chunk)
		}
	}
	// An inverted floor/ceiling is rejected up front, not silently
	// clamped to the floor.
	{
		p, err := Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := ExecConfig{Adaptive: true, ChunkMin: 32, ChunkMax: 8, Model: sim.NewNamed("sim-gpt-3.5-turbo")}
		if _, err := p.Run(context.Background(), cfg, tables); err == nil || !strings.Contains(err.Error(), "ChunkMin") {
			t.Fatalf("ChunkMin > ChunkMax accepted: err = %v", err)
		}
	}
	for _, bounds := range [][2]int{{0, 0}, {1, 4}, {2, 64}, {16, 16}} {
		got := run(ExecConfig{Adaptive: true, ChunkMin: bounds[0], ChunkMax: bounds[1]})
		// Segment-internal tables may legitimately differ when the order
		// was revised mid-run; everything downstream of the segment — and
		// the segment's own output — must be byte-identical.
		for _, stage := range []string{"entities", "named", "city", "n"} {
			if !reflect.DeepEqual(want.Tables[stage], got.Tables[stage]) {
				t.Fatalf("adaptive bounds %v: stage %q table differs from materialized", bounds, stage)
			}
		}
		if !reflect.DeepEqual(want.Scalars, got.Scalars) {
			t.Fatalf("adaptive bounds %v: scalars %v != %v", bounds, got.Scalars, want.Scalars)
		}
	}
}

// TestAdaptiveSideInputOverlap is the overlap contract: with Adaptive
// set, a streamable join whose right side is an earlier stage's output
// starts matching buffered main-input records as soon as the side table
// lands — while the main-input producer is still working. The model
// blocks the producer's last record until a join comparison arrives; the
// drain-first path would deadlock here (guarded by a timeout), exactly
// like the plain streaming overlap test.
func TestAdaptiveSideInputOverlap(t *testing.T) {
	names := dataset.FlavorNames()
	// splitModel: "poolpred" keeps even-indexed flavors, "feedpred" keeps
	// odd ones (join inputs must not share IDs); gate, when non-nil,
	// blocks feedpred's evaluation of the last flavor until released.
	splitModel := func(name string, gate func(ctx context.Context) error, onJoin func()) llm.Func {
		return llm.Func{ModelName: name, Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
			if strings.Contains(req.Prompt, "satisfy the condition") {
				idx := -1
				for i, n := range names[:4] {
					if strings.Contains(req.Prompt, n) {
						idx = i
						break
					}
				}
				feed := strings.Contains(req.Prompt, "feedpred")
				if feed && idx == 3 && gate != nil {
					if err := gate(ctx); err != nil {
						return llm.Response{}, err
					}
				}
				if idx >= 0 && (idx%2 == 1) == feed {
					return unit("Yes"), nil
				}
				return unit("No"), nil
			}
			if onJoin != nil {
				onJoin()
			}
			return unit("Yes"), nil
		}}
	}
	release := make(chan struct{})
	var joins atomic.Int32
	gate := func(ctx context.Context) error {
		select {
		case <-release:
			return nil
		case <-time.After(10 * time.Second):
			t.Error("feed's last record ran before any join comparison: side materialization did not overlap the main path")
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	onJoin := func() {
		if joins.Add(1) == 1 {
			close(release)
		}
	}
	spec := Spec{Stages: []StageSpec{
		{Name: "pool", Kind: KindFilter, Field: "name", Predicate: "poolpred", Input: "source"},
		{Name: "feed", Kind: KindFilter, Field: "name", Predicate: "feedpred", Input: "source"},
		{Name: "match", Kind: KindJoin, Field: "name", Side: "pool", Strategy: "nested-loop", Input: "feed"},
	}}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background(), ExecConfig{
		Model: splitModel("overlap-side", gate, onJoin), Adaptive: true, Chunk: 1, Parallelism: 1,
	}, flavorTables(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables["match"]) != 4 {
		t.Fatalf("match table has %d rows, want 2x2", len(res.Tables["match"]))
	}

	// Equivalence: the overlapped run must match the barrier (drain-first)
	// run of the same spec record for record.
	runWith := func(adaptive bool) []dataset.Record {
		t.Helper()
		p, err := Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(context.Background(), ExecConfig{
			Model: splitModel("calm", nil, nil), Adaptive: adaptive, Chunk: 1,
		}, flavorTables(4))
		if err != nil {
			t.Fatal(err)
		}
		return res.Tables["match"]
	}
	if want, got := runWith(false), runWith(true); !reflect.DeepEqual(want, got) {
		t.Fatalf("overlapped side join differs from drain-first:\nwant %v\ngot  %v", want, got)
	}
}

// TestAdaptiveSideOverlapFailureNoLeak covers the buffering path's
// failure contract, mirroring TestStreamingCancellationNoLeak: a join
// erroring while overlapped with its producers must cancel the run,
// surface its own stage as the root cause, and leave no goroutine behind
// (spool feeder included). Run with -race in CI.
func TestAdaptiveSideOverlapFailureNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	names := dataset.FlavorNames()
	model := llm.Func{ModelName: "side-poison", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		if strings.Contains(req.Prompt, "satisfy the condition") {
			idx := -1
			for i, n := range names[:6] {
				if strings.Contains(req.Prompt, n) {
					idx = i
					break
				}
			}
			// Disjoint halves, so the join's inputs share no IDs.
			if idx >= 0 && (idx%2 == 1) == strings.Contains(req.Prompt, "feedpred") {
				return unit("Yes"), nil
			}
			return unit("No"), nil
		}
		return llm.Response{}, fmt.Errorf("join comparison explosion")
	}}
	spec := Spec{Stages: []StageSpec{
		{Name: "pool", Kind: KindFilter, Field: "name", Predicate: "poolpred", Input: "source"},
		{Name: "feed", Kind: KindFilter, Field: "name", Predicate: "feedpred", Input: "source"},
		{Name: "match", Kind: KindJoin, Field: "name", Side: "pool", Strategy: "nested-loop", Input: "feed"},
	}}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(context.Background(), ExecConfig{Model: model, Adaptive: true, Chunk: 1, Parallelism: 1}, flavorTables(6))
	if err == nil || !strings.Contains(err.Error(), "join comparison explosion") || !strings.Contains(err.Error(), `"match"`) {
		t.Fatalf("err = %v, want the join stage's root cause", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before run, %d after\n%s", before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdaptiveSideOverlapSpillFailureNoLeak is the spill-path variant:
// the spool's in-memory ring is shrunk so the main input spills to disk,
// and the join then fails mid-replay — while the feeder goroutine still
// holds spilled records to pop. The run must surface the root cause with
// no leaked goroutine and no race between the feeder's reads and the
// spool teardown (this exact interleaving once raced under -race).
func TestAdaptiveSideOverlapSpillFailureNoLeak(t *testing.T) {
	sideSpoolMem = 1
	defer func() { sideSpoolMem = 0 }()
	before := runtime.NumGoroutine()
	names := dataset.FlavorNames()
	model := llm.Func{ModelName: "spill-poison", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		if strings.Contains(req.Prompt, "satisfy the condition") {
			idx := -1
			for i, n := range names[:8] {
				if strings.Contains(req.Prompt, n) {
					idx = i
					break
				}
			}
			if idx >= 0 && (idx%2 == 1) == strings.Contains(req.Prompt, "feedpred") {
				return unit("Yes"), nil
			}
			return unit("No"), nil
		}
		return llm.Response{}, fmt.Errorf("join comparison explosion")
	}}
	spec := Spec{Stages: []StageSpec{
		{Name: "pool", Kind: KindFilter, Field: "name", Predicate: "poolpred", Input: "source"},
		{Name: "feed", Kind: KindFilter, Field: "name", Predicate: "feedpred", Input: "source"},
		{Name: "match", Kind: KindJoin, Field: "name", Side: "pool", Strategy: "nested-loop", Input: "feed"},
	}}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(context.Background(), ExecConfig{Model: model, Adaptive: true, Chunk: 1, Parallelism: 1}, flavorTables(8))
	if err == nil || !strings.Contains(err.Error(), "join comparison explosion") || !strings.Contains(err.Error(), `"match"`) {
		t.Fatalf("err = %v, want the join stage's root cause", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before run, %d after\n%s", before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMidRunReplanReordersFilters is the mid-run re-optimization pin:
// two hintless filters start in user order (estimates tie at the 0.5
// prior), the observed keep rates diverge within a few chunks, and the
// segment flips the genuinely tighter filter to the front for the
// not-yet-started remainder of the stream — spending fewer loose-filter
// evaluations than the static order would, with the final table
// unchanged.
func TestMidRunReplanReordersFilters(t *testing.T) {
	names := dataset.FlavorNames()
	model := llm.Func{ModelName: "replan", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		if strings.Contains(req.Prompt, "tightpred") {
			if strings.Contains(req.Prompt, names[0]) {
				return unit("Yes"), nil
			}
			return unit("No"), nil
		}
		return unit("Yes"), nil
	}}
	spec := Spec{Stages: []StageSpec{
		{Name: "loose", Kind: KindFilter, Field: "name", Predicate: "loosepred"},
		{Name: "tight", Kind: KindFilter, Field: "name", Predicate: "tightpred"},
	}}
	n := 16
	run := func(adaptive bool) *Result {
		t.Helper()
		p, err := Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(context.Background(), ExecConfig{
			Model: model, Adaptive: adaptive, Chunk: 1, Parallelism: 1,
		}, flavorTables(n))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static, adaptive := run(false), run(true)
	if !reflect.DeepEqual(static.Tables["tight"], adaptive.Tables["tight"]) {
		t.Fatalf("replanned segment output differs:\nstatic   %v\nadaptive %v",
			static.Tables["tight"], adaptive.Tables["tight"])
	}
	if len(adaptive.Tables["tight"]) != 1 {
		t.Fatalf("segment kept %d records, want 1", len(adaptive.Tables["tight"]))
	}
	tail := stageByName(t, adaptive, "tight")
	if !strings.Contains(tail.Detail, "order revised") || strings.Contains(tail.Detail, "revised 0 times") {
		t.Fatalf("segment never replanned: detail = %q", tail.Detail)
	}
	// After the flip, the loose filter only sees records the tight filter
	// kept — strictly fewer evaluations than the static order's full n.
	loose := stageByName(t, adaptive, "loose")
	if loose.In >= n {
		t.Fatalf("loose filter evaluated %d records, want fewer than %d after the replan", loose.In, n)
	}
	if st := stageByName(t, static, "loose"); st.In != n {
		t.Fatalf("static run's loose filter evaluated %d, want all %d", st.In, n)
	}

	// Isolated keeps per-stage engines, which a segment would share —
	// the same adaptive run under Isolated must not form one.
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	iso, err := p.Run(context.Background(), ExecConfig{
		Model: model, Adaptive: true, Isolated: true, Chunk: 1, Parallelism: 1,
	}, flavorTables(n))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(static.Tables["tight"], iso.Tables["tight"]) {
		t.Fatalf("isolated adaptive output differs from static: %v", iso.Tables["tight"])
	}
	if d := stageByName(t, iso, "tight").Detail; strings.Contains(d, "adaptive segment") {
		t.Fatalf("isolated run formed a segment: detail = %q", d)
	}
}

func stageByName(t *testing.T, res *Result, name string) StageReport {
	t.Helper()
	for _, s := range res.Stages {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no stage %q in report", name)
	return StageReport{}
}

// TestNextChunkCancellation is the satellite regression pin: a cancelled
// context must win the next chunk boundary promptly whether the upstream
// is idle (nothing buffered, the stage is blocked on its first record) or
// flooding (records always ready, so the select could keep choosing the
// receive case forever without the explicit entry poll).
func TestNextChunkCancellation(t *testing.T) {
	// Idle upstream: block on an open, empty channel; cancel mid-wait.
	idle := make(chan dataset.Record)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, _, err := nextChunk(ctx, idle, 8)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("nextChunk returned nil on a cancelled idle upstream")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("nextChunk did not return promptly after cancellation during an idle upstream")
	}

	// Busy upstream: the channel always has a record ready, and the
	// context is already cancelled — the entry poll must still surface the
	// cancellation instead of assembling another chunk.
	busy := make(chan dataset.Record, 4)
	for i := 0; i < 4; i++ {
		busy <- dataset.Record{ID: fmt.Sprintf("r%d", i)}
	}
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if chunk, _, err := nextChunk(cctx, busy, 2); err == nil {
		t.Fatalf("nextChunk assembled %d records under a cancelled context", len(chunk))
	}
}

// TestAdaptiveIdleUpstreamCancellation is the end-to-end version: cancel
// the caller's context while a downstream stage idles in nextChunk
// waiting for a slow producer, and the whole run must return promptly.
func TestAdaptiveIdleUpstreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	model := llm.Func{ModelName: "slow", Fn: func(mctx context.Context, req llm.Request) (llm.Response, error) {
		// The filter never answers: downstream categorize idles in
		// nextChunk the whole run.
		select {
		case <-mctx.Done():
			return llm.Response{}, mctx.Err()
		case <-time.After(30 * time.Second):
			return unit("Yes"), nil
		}
	}}
	spec := Spec{Stages: []StageSpec{
		{Name: "keep", Kind: KindFilter, Predicate: "p"},
		{Name: "cat", Kind: KindCategorize, Categories: []string{"a"}},
	}}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = p.Run(ctx, ExecConfig{Model: model, Adaptive: true, Parallelism: 1}, flavorTables(4))
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("run took %s to notice cancellation with an idle upstream", elapsed)
	}
}

package pipeline

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workflow"
)

// ProbeOptions configures OptimizeProbed's selectivity measurement.
type ProbeOptions struct {
	// Sample caps the records probed per hintless filter (default 8).
	Sample int
}

// OptimizeProbed rewrites the spec like Optimize, but first replaces the
// 0.5 default selectivity of every hintless filter with a measured value:
// each such filter's predicate runs over a deterministic sample of the
// source table before pushdown ordering, so two hintless filters are
// ordered by how they actually behave rather than tying at the default.
//
// Probes execute through the config's machinery — the same execution
// layer, budget, and attribution ledger a subsequent Run with the same
// config uses. Pass a persistent cfg.Exec and cfg.Attribution: the cache
// is keyed on unit-task prompts (below it, batching re-groups freely), so
// the run re-serves every probed record's answer for free, and the
// probe's real upstream spend appears in the run report as its own
// workflow.StageProbe row, keeping the attribution total equal to the
// budget's spend.
//
// The returned trace logs, for every filter, whether its hint was trusted
// or what the probe measured, followed by the rewrites applied.
func OptimizeProbed(ctx context.Context, spec Spec, cfg ExecConfig, tables map[string][]dataset.Record, opts ProbeOptions) (Spec, []string, error) {
	specs, err := normalize(spec.Stages)
	if err != nil {
		return Spec{}, nil, err
	}
	source := tables["source"]
	if len(source) == 0 {
		return Spec{}, nil, fmt.Errorf("pipeline: probing needs a non-empty %q table", "source")
	}
	sample := opts.Sample
	if sample <= 0 {
		sample = 8
	}
	engine := cfg.runtime().engineFor()
	pctx := workflow.TagStage(ctx, workflow.StageProbe)
	var log []string
	for i := range specs {
		f := specs[i]
		if f.Kind != KindFilter {
			continue
		}
		if f.Selectivity > 0 {
			log = append(log, fmt.Sprintf("probe: filter %q trusts its hint %.2f", f.Name, f.Selectivity))
			continue
		}
		if !probeable(specs, f) {
			log = append(log, fmt.Sprintf("probe: filter %q not probeable on the source table (an upstream stage writes what it reads); keeping the 0.50 default", f.Name))
			continue
		}
		// Stride-select the sample records before rendering: the indices
		// match core's strideSample exactly (i*len/k), so only the probed
		// records are serialized rather than the whole source table.
		est, err := engine.EstimateSelectivity(pctx, core.FilterRequest{
			Items:     renderAll(strideRecords(source, sample), f.Field),
			Predicate: f.Predicate,
			Strategy:  core.FilterStrategy(f.Strategy),
		}, sample)
		if err != nil {
			return Spec{}, nil, fmt.Errorf("pipeline: probing filter %q: %w", f.Name, err)
		}
		// Rule-of-succession smoothing keeps the estimate strictly inside
		// (0, 1): a sample that kept nothing must not claim selectivity 0
		// (reserved for "unset"), nor certainty the full table could
		// refute.
		measured := (float64(est.Kept) + 1) / (float64(est.Sampled) + 2)
		specs[i].Selectivity = measured
		log = append(log, fmt.Sprintf("probe: filter %q measured selectivity %.2f (kept %d of %d sampled; hintless default was 0.50)",
			f.Name, measured, est.Kept, est.Sampled))
	}
	specs, rewrites := pushdown(specs)
	out := spec
	out.Stages = specs
	return out, append(log, rewrites...), nil
}

// strideRecords picks at most k records spread evenly across the table,
// using the same i*len/k indices as core's string-level stride so the
// pre-selection changes nothing about which records get probed.
func strideRecords(recs []dataset.Record, k int) []dataset.Record {
	if len(recs) <= k {
		return recs
	}
	out := make([]dataset.Record, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, recs[i*len(recs)/k])
	}
	return out
}

// probeable reports whether the filter's rendered input on the source
// table is a faithful stand-in for its real input: no stage between the
// source and the filter may write the field the filter reads (nor any
// field at all, when the filter renders whole records). Stages that only
// drop or reorder records (other filters, dedupe, sort) merely bias the
// sample — the probe stays an estimate either way.
func probeable(specs []StageSpec, f StageSpec) bool {
	for cur := f.Input; cur != "source"; {
		s := specs[indexOf(specs, cur)]
		w := writes(s)
		if f.Field == "" && len(w) > 0 {
			return false
		}
		for _, field := range w {
			if field == f.Field {
				return false
			}
		}
		cur = s.Input
	}
	return true
}

package consistency

// Comparison is one pairwise judgement about a candidate item versus an
// item already placed in a sorted list: Less reports whether the oracle
// judged the candidate to precede the list item.
type Comparison struct {
	// ListIndex is the position of the compared item in the sorted list.
	ListIndex int
	// Less is true when the oracle placed the candidate before the item.
	Less bool
}

// AlignmentInsert returns the insertion index (0..listLen) for a candidate
// given its pairwise comparisons against the items of a sorted list,
// choosing the position that inverts the fewest comparisons — the
// "maximise alignment" rule from Section 3.2 of the paper.
//
// Inserting at position p should make the candidate greater than every
// list item before p (comparisons with ListIndex < p should have
// Less == false) and smaller than every item from p on (ListIndex >= p
// should have Less == true). The returned index minimises the number of
// comparisons violating that; ties resolve to the smallest index.
// Multiple comparisons for the same list index (e.g. the order-debiased
// double prompts) each count individually.
func AlignmentInsert(listLen int, comparisons []Comparison) int {
	if listLen < 0 {
		listLen = 0
	}
	// lessAt[i] / geAt[i]: votes that the candidate is less / not-less
	// than list item i. Out-of-range indices are ignored.
	lessAt := make([]int, listLen)
	geAt := make([]int, listLen)
	for _, c := range comparisons {
		if c.ListIndex < 0 || c.ListIndex >= listLen {
			continue
		}
		if c.Less {
			lessAt[c.ListIndex]++
		} else {
			geAt[c.ListIndex]++
		}
	}
	// violations(p) = sum_{i<p} lessAt[i] + sum_{i>=p} geAt[i].
	// Compute with a sweep: start at p=0 and move right.
	viol := 0
	for i := 0; i < listLen; i++ {
		viol += geAt[i]
	}
	best, bestViol := 0, viol
	for p := 1; p <= listLen; p++ {
		viol += lessAt[p-1] - geAt[p-1]
		if viol < bestViol {
			best, bestViol = p, viol
		}
	}
	return best
}

// InsertAt returns a copy of list with item inserted at index p (clamped
// to the valid range).
func InsertAt(list []string, item string, p int) []string {
	if p < 0 {
		p = 0
	}
	if p > len(list) {
		p = len(list)
	}
	out := make([]string, 0, len(list)+1)
	out = append(out, list[:p]...)
	out = append(out, item)
	out = append(out, list[p:]...)
	return out
}

// FirstLessInsert returns the naive insertion index: the position of the
// first list item the oracle judged the candidate to precede, or listLen
// if no comparison says so. This is the baseline rule the paper describes
// as performing poorly (a single early mistake dominates); it exists for
// the ablation benchmarks.
func FirstLessInsert(listLen int, comparisons []Comparison) int {
	first := listLen
	for _, c := range comparisons {
		if c.ListIndex < 0 || c.ListIndex >= listLen || !c.Less {
			continue
		}
		if c.ListIndex < first {
			first = c.ListIndex
		}
	}
	return first
}

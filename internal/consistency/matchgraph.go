package consistency

import "sort"

// MatchGraph records pairwise duplicate judgements (edges) between record
// identifiers and answers connectivity queries. It implements the
// transitivity repair of Section 3.3: if the oracle says A=C and C=B, then
// A=B holds even when the direct A–B judgement was "no".
type MatchGraph struct {
	adj map[string]map[string]bool
}

// NewMatchGraph returns an empty match graph.
func NewMatchGraph() *MatchGraph {
	return &MatchGraph{adj: make(map[string]map[string]bool)}
}

// AddNode registers an isolated node (useful so Components can report
// singletons).
func (g *MatchGraph) AddNode(id string) {
	if g.adj[id] == nil {
		g.adj[id] = make(map[string]bool)
	}
}

// AddMatch records an undirected duplicate judgement between a and b.
func (g *MatchGraph) AddMatch(a, b string) {
	if a == b {
		g.AddNode(a)
		return
	}
	g.AddNode(a)
	g.AddNode(b)
	g.adj[a][b] = true
	g.adj[b][a] = true
}

// HasEdge reports whether a direct judgement links a and b.
func (g *MatchGraph) HasEdge(a, b string) bool { return g.adj[a][b] }

// Connected reports whether any path of duplicate judgements links a and
// b — the transitive-evidence query used to flip erroneous "no" answers.
func (g *MatchGraph) Connected(a, b string) bool {
	if a == b {
		_, ok := g.adj[a]
		return ok
	}
	if g.adj[a] == nil || g.adj[b] == nil {
		return false
	}
	// BFS from a.
	visited := map[string]bool{a: true}
	frontier := []string{a}
	for len(frontier) > 0 {
		var next []string
		for _, u := range frontier {
			for v := range g.adj[u] {
				if v == b {
					return true
				}
				if !visited[v] {
					visited[v] = true
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return false
}

// Path returns one shortest path of judgements from a to b (inclusive of
// both endpoints), or nil if none exists. Ties break lexicographically for
// determinism.
func (g *MatchGraph) Path(a, b string) []string {
	if g.adj[a] == nil || g.adj[b] == nil {
		return nil
	}
	if a == b {
		return []string{a}
	}
	prev := map[string]string{a: a}
	frontier := []string{a}
	for len(frontier) > 0 {
		var next []string
		sort.Strings(frontier)
		for _, u := range frontier {
			nbrs := make([]string, 0, len(g.adj[u]))
			for v := range g.adj[u] {
				nbrs = append(nbrs, v)
			}
			sort.Strings(nbrs)
			for _, v := range nbrs {
				if _, seen := prev[v]; seen {
					continue
				}
				prev[v] = u
				if v == b {
					// Reconstruct.
					path := []string{b}
					for cur := b; cur != a; {
						cur = prev[cur]
						path = append(path, cur)
					}
					// Reverse.
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					return path
				}
				next = append(next, v)
			}
		}
		frontier = next
	}
	return nil
}

// Components returns the connected components as sorted member lists,
// ordered by their smallest member — the deduplicated entity groups.
func (g *MatchGraph) Components() [][]string {
	uf := NewUnionFind()
	for a, nbrs := range g.adj {
		uf.Add(a)
		for b := range nbrs {
			uf.Union(a, b)
		}
	}
	groups := uf.Groups()
	out := make([][]string, 0, len(groups))
	for _, members := range groups {
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Nodes returns all node identifiers in sorted order.
func (g *MatchGraph) Nodes() []string {
	out := make([]string, 0, len(g.adj))
	for id := range g.adj {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

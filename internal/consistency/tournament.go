package consistency

import "sort"

// Tournament aggregates (possibly repeated, possibly contradictory)
// pairwise comparison outcomes over a fixed item set and derives a
// consensus ranking. It implements the Section 3.3 idea that, under a
// random-mistake model, the maximum-likelihood order is the one that
// inverts the fewest observed comparisons (minimum feedback arc set).
type Tournament struct {
	items []string
	index map[string]int
	// wins[i][j] counts observations of "i beats j".
	wins [][]int
}

// NewTournament creates a tournament over the given items. Duplicate item
// names panic: comparison outcomes would be ambiguous.
func NewTournament(items []string) *Tournament {
	t := &Tournament{
		items: append([]string(nil), items...),
		index: make(map[string]int, len(items)),
	}
	for i, it := range items {
		if _, dup := t.index[it]; dup {
			panic("consistency: duplicate tournament item " + it)
		}
		t.index[it] = i
	}
	t.wins = make([][]int, len(items))
	for i := range t.wins {
		t.wins[i] = make([]int, len(items))
	}
	return t
}

// Record stores one observation that winner beat loser. Unknown items and
// self-comparisons are ignored (the response parser may surface junk).
func (t *Tournament) Record(winner, loser string) {
	i, ok1 := t.index[winner]
	j, ok2 := t.index[loser]
	if !ok1 || !ok2 || i == j {
		return
	}
	t.wins[i][j]++
}

// Items returns the item set in construction order.
func (t *Tournament) Items() []string { return append([]string(nil), t.items...) }

// CopelandOrder ranks items by total wins, descending — the simple
// aggregation the paper's pairwise sorting strategy uses ("sorting based
// on the total number of pairwise comparisons a given data item won, with
// ties broken arbitrarily"). Ties break by construction order, making the
// result deterministic.
func (t *Tournament) CopelandOrder() []string {
	type scored struct {
		idx, wins int
	}
	s := make([]scored, len(t.items))
	for i := range t.items {
		s[i].idx = i
		for j := range t.items {
			s[i].wins += t.wins[i][j]
		}
	}
	sort.SliceStable(s, func(a, b int) bool { return s[a].wins > s[b].wins })
	out := make([]string, len(s))
	for i, sc := range s {
		out[i] = t.items[sc.idx]
	}
	return out
}

// Violations counts observed comparisons inverted by the given order
// (items earlier in order are ranked higher). Orders containing unknown
// items contribute nothing for those items.
func (t *Tournament) Violations(order []string) int {
	pos := make(map[string]int, len(order))
	for i, it := range order {
		pos[it] = i
	}
	v := 0
	for i := range t.items {
		for j := range t.items {
			if t.wins[i][j] == 0 {
				continue
			}
			pi, ok1 := pos[t.items[i]]
			pj, ok2 := pos[t.items[j]]
			if !ok1 || !ok2 {
				continue
			}
			if pi > pj { // i beat j but is ranked below j
				v += t.wins[i][j]
			}
		}
	}
	return v
}

// exactFASLimit bounds the item count for the exact O(2^n · n) dynamic
// program. Beyond it, RepairOrder falls back to local search.
const exactFASLimit = 16

// RepairOrder returns a consensus ranking minimising the number of
// inverted observations. For item sets up to exactFASLimit it solves the
// minimum-feedback problem exactly with a bitmask dynamic program (the
// maximum-likelihood order under the paper's random-mistake model); for
// larger sets it starts from the Copeland order and applies adjacent-swap
// local search until no single move reduces violations.
func (t *Tournament) RepairOrder() []string {
	n := len(t.items)
	if n == 0 {
		return nil
	}
	if n <= exactFASLimit {
		return t.exactOrder()
	}
	return t.localSearchOrder()
}

// exactOrder solves minimum feedback arc set with a dynamic program over
// subsets, building the order back-to-front: placing item j last within
// subset S inverts every observed win of j over S\{j}, so
// cost(S) = min over j in S of cost(S\{j}) + wins(j, S\{j}).
func (t *Tournament) exactOrder() []string {
	n := len(t.items)
	full := (1 << n) - 1
	cost := make([]int32, full+1)
	choice := make([]int8, full+1)
	const inf = int32(1 << 30)
	for s := 1; s <= full; s++ {
		cost[s] = inf
		for j := 0; j < n; j++ {
			if s&(1<<j) == 0 {
				continue
			}
			rest := s &^ (1 << j)
			// Placing j after every element of rest inverts j's wins over rest.
			var penalty int32
			for k := 0; k < n; k++ {
				if rest&(1<<k) != 0 {
					penalty += int32(t.wins[j][k])
				}
			}
			if c := cost[rest] + penalty; c < cost[s] {
				cost[s] = c
				choice[s] = int8(j)
			}
		}
	}
	order := make([]string, 0, n)
	for s := full; s != 0; {
		j := int(choice[s])
		order = append(order, t.items[j])
		s &^= 1 << j
	}
	// order was built last-to-first; reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

func (t *Tournament) localSearchOrder() []string {
	order := t.CopelandOrder()
	idx := make([]int, len(order))
	for i, it := range order {
		idx[i] = t.index[it]
	}
	improved := true
	for improved {
		improved = false
		for p := 0; p+1 < len(idx); p++ {
			a, b := idx[p], idx[p+1]
			// Swapping adjacent items only changes their mutual edges.
			// Current inversion cost: wins[b][a] (b beat a but ranked lower).
			// After swap: wins[a][b].
			if t.wins[b][a] > t.wins[a][b] {
				idx[p], idx[p+1] = b, a
				improved = true
			}
		}
	}
	out := make([]string, len(idx))
	for i, id := range idx {
		out[i] = t.items[id]
	}
	return out
}

// MaxItem returns the consensus maximum: the first element of RepairOrder.
// It returns "" for an empty tournament.
func (t *Tournament) MaxItem() string {
	order := t.RepairOrder()
	if len(order) == 0 {
		return ""
	}
	return order[0]
}

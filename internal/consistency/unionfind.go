// Package consistency implements the internal-consistency machinery of
// Section 3.3 of the paper: transitive closure over noisy match graphs
// (entity resolution), tournament repair for noisy pairwise comparisons
// (sorting / max-finding), and the alignment-maximising insertion used by
// the sort-then-insert hybrid strategy.
package consistency

// UnionFind is a classic disjoint-set structure over string identifiers
// with path compression and union by size. The zero value is not usable;
// construct with NewUnionFind.
type UnionFind struct {
	parent map[string]string
	size   map[string]int
	sets   int
}

// NewUnionFind returns an empty disjoint-set structure.
func NewUnionFind() *UnionFind {
	return &UnionFind{
		parent: make(map[string]string),
		size:   make(map[string]int),
	}
}

// Add registers id as a singleton set if it is not already present.
func (u *UnionFind) Add(id string) {
	if _, ok := u.parent[id]; ok {
		return
	}
	u.parent[id] = id
	u.size[id] = 1
	u.sets++
}

// Find returns the canonical representative of id's set, adding id as a
// singleton if it was unknown.
func (u *UnionFind) Find(id string) string {
	u.Add(id)
	root := id
	for u.parent[root] != root {
		root = u.parent[root]
	}
	// Path compression.
	for u.parent[id] != root {
		id, u.parent[id] = u.parent[id], root
	}
	return root
}

// Union merges the sets containing a and b and reports whether a merge
// actually happened (false if they were already together).
func (u *UnionFind) Union(a, b string) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	u.sets--
	return true
}

// Same reports whether a and b are in the same set.
func (u *UnionFind) Same(a, b string) bool { return u.Find(a) == u.Find(b) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Groups returns the members of every set keyed by representative. Member
// order within a group is unspecified; callers needing determinism should
// sort.
func (u *UnionFind) Groups() map[string][]string {
	out := make(map[string][]string)
	for id := range u.parent {
		root := u.Find(id)
		out[root] = append(out[root], id)
	}
	return out
}

package consistency

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind()
	uf.Add("a")
	uf.Add("a") // idempotent
	if uf.Sets() != 1 {
		t.Fatalf("Sets = %d", uf.Sets())
	}
	if !uf.Union("a", "b") {
		t.Fatal("first union should merge")
	}
	if uf.Union("a", "b") {
		t.Fatal("second union should be a no-op")
	}
	if !uf.Same("a", "b") {
		t.Fatal("a and b should be together")
	}
	if uf.Same("a", "c") {
		t.Fatal("a and c should be apart")
	}
	if uf.Sets() != 2 { // {a,b} and {c} (c auto-added by Same)
		t.Fatalf("Sets = %d, want 2", uf.Sets())
	}
}

func TestUnionFindGroups(t *testing.T) {
	uf := NewUnionFind()
	uf.Union("a", "b")
	uf.Union("b", "c")
	uf.Add("d")
	groups := uf.Groups()
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	members := groups[uf.Find("a")]
	sort.Strings(members)
	if !reflect.DeepEqual(members, []string{"a", "b", "c"}) {
		t.Fatalf("group = %v", members)
	}
}

func TestUnionFindTransitivityProperty(t *testing.T) {
	// Property: union is transitive — chaining k unions yields one set.
	f := func(n uint8) bool {
		uf := NewUnionFind()
		k := int(n%20) + 2
		ids := make([]string, k)
		for i := range ids {
			ids[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
			if i > 0 {
				uf.Union(ids[i-1], ids[i])
			}
		}
		return uf.Same(ids[0], ids[k-1]) && uf.Sets() == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchGraphConnectivity(t *testing.T) {
	g := NewMatchGraph()
	g.AddMatch("a", "b")
	g.AddMatch("b", "c")
	g.AddNode("d")
	if !g.HasEdge("a", "b") || g.HasEdge("a", "c") {
		t.Fatal("edge bookkeeping wrong")
	}
	if !g.Connected("a", "c") {
		t.Fatal("a-c should be transitively connected")
	}
	if g.Connected("a", "d") {
		t.Fatal("a-d should be disconnected")
	}
	if g.Connected("a", "zzz") {
		t.Fatal("unknown node should be disconnected")
	}
	if !g.Connected("a", "a") {
		t.Fatal("known node should be connected to itself")
	}
}

func TestMatchGraphSelfEdge(t *testing.T) {
	g := NewMatchGraph()
	g.AddMatch("a", "a")
	if g.HasEdge("a", "a") {
		t.Fatal("self edge should not be stored")
	}
	if !g.Connected("a", "a") {
		t.Fatal("node should still exist")
	}
}

func TestMatchGraphPath(t *testing.T) {
	g := NewMatchGraph()
	g.AddMatch("a", "b")
	g.AddMatch("b", "c")
	g.AddMatch("a", "d") // longer alternative a-d? no edge d-c
	path := g.Path("a", "c")
	if !reflect.DeepEqual(path, []string{"a", "b", "c"}) {
		t.Fatalf("path = %v", path)
	}
	if g.Path("a", "zzz") != nil {
		t.Fatal("path to unknown node should be nil")
	}
	if p := g.Path("a", "a"); !reflect.DeepEqual(p, []string{"a"}) {
		t.Fatalf("self path = %v", p)
	}
}

func TestMatchGraphComponents(t *testing.T) {
	g := NewMatchGraph()
	g.AddMatch("b", "a")
	g.AddMatch("c", "b")
	g.AddNode("z")
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if !reflect.DeepEqual(comps[0], []string{"a", "b", "c"}) {
		t.Fatalf("first component = %v", comps[0])
	}
	if !reflect.DeepEqual(comps[1], []string{"z"}) {
		t.Fatalf("second component = %v", comps[1])
	}
	if !reflect.DeepEqual(g.Nodes(), []string{"a", "b", "c", "z"}) {
		t.Fatalf("nodes = %v", g.Nodes())
	}
}

func TestTournamentCopeland(t *testing.T) {
	tr := NewTournament([]string{"a", "b", "c"})
	tr.Record("a", "b")
	tr.Record("a", "c")
	tr.Record("b", "c")
	order := tr.CopelandOrder()
	if !reflect.DeepEqual(order, []string{"a", "b", "c"}) {
		t.Fatalf("order = %v", order)
	}
	if v := tr.Violations(order); v != 0 {
		t.Fatalf("violations = %d", v)
	}
	if v := tr.Violations([]string{"c", "b", "a"}); v != 3 {
		t.Fatalf("reversed violations = %d, want 3", v)
	}
}

func TestTournamentRecordIgnoresJunk(t *testing.T) {
	tr := NewTournament([]string{"a", "b"})
	tr.Record("a", "a")
	tr.Record("zzz", "a")
	tr.Record("a", "zzz")
	if v := tr.Violations([]string{"b", "a"}); v != 0 {
		t.Fatal("junk records should not count")
	}
}

func TestTournamentDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate items should panic")
		}
	}()
	NewTournament([]string{"a", "a"})
}

func TestRepairOrderFixesCycle(t *testing.T) {
	// a>b twice, b>c twice, and one inconsistent c>a. The ML order flips
	// the single c>a edge: a, b, c.
	tr := NewTournament([]string{"a", "b", "c"})
	tr.Record("a", "b")
	tr.Record("a", "b")
	tr.Record("b", "c")
	tr.Record("b", "c")
	tr.Record("c", "a")
	order := tr.RepairOrder()
	if !reflect.DeepEqual(order, []string{"a", "b", "c"}) {
		t.Fatalf("repair order = %v", order)
	}
	if v := tr.Violations(order); v != 1 {
		t.Fatalf("violations = %d, want 1", v)
	}
}

func TestRepairOrderEmptyAndSingle(t *testing.T) {
	if got := NewTournament(nil).RepairOrder(); got != nil {
		t.Fatalf("empty repair = %v", got)
	}
	if got := NewTournament([]string{"a"}).RepairOrder(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("single repair = %v", got)
	}
	if NewTournament(nil).MaxItem() != "" {
		t.Fatal("empty MaxItem should be empty string")
	}
}

func TestRepairOrderOptimalProperty(t *testing.T) {
	// Property: for small n, the exact repair order has violations <= any
	// random permutation's violations.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		items := make([]string, n)
		for i := range items {
			items[i] = string(rune('a' + i))
		}
		tr := NewTournament(items)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					tr.Record(items[i], items[j])
				} else {
					tr.Record(items[j], items[i])
				}
			}
		}
		best := tr.Violations(tr.RepairOrder())
		perm := rng.Perm(n)
		randOrder := make([]string, n)
		for i, p := range perm {
			randOrder[i] = items[p]
		}
		return best <= tr.Violations(randOrder)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRepairOrderLargeLocalSearch(t *testing.T) {
	// 20 items exceeds the exact limit; local search must still beat
	// (or match) Copeland on a noisy tournament.
	rng := rand.New(rand.NewSource(9))
	items := make([]string, 20)
	for i := range items {
		items[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	tr := NewTournament(items)
	for i := range items {
		for j := i + 1; j < len(items); j++ {
			// True order is slice order; 20% mistakes.
			if rng.Float64() < 0.8 {
				tr.Record(items[i], items[j])
			} else {
				tr.Record(items[j], items[i])
			}
		}
	}
	repaired := tr.Violations(tr.RepairOrder())
	copeland := tr.Violations(tr.CopelandOrder())
	if repaired > copeland {
		t.Fatalf("local search (%d violations) worse than Copeland (%d)", repaired, copeland)
	}
}

func TestMaxItem(t *testing.T) {
	tr := NewTournament([]string{"a", "b", "c"})
	tr.Record("b", "a")
	tr.Record("b", "c")
	tr.Record("a", "c")
	if got := tr.MaxItem(); got != "b" {
		t.Fatalf("MaxItem = %q, want b", got)
	}
}

func TestAlignmentInsertPerfectSignals(t *testing.T) {
	// Candidate belongs at index 2 of a 4-item list.
	comps := []Comparison{
		{0, false}, {1, false}, {2, true}, {3, true},
	}
	if got := AlignmentInsert(4, comps); got != 2 {
		t.Fatalf("insert = %d, want 2", got)
	}
}

func TestAlignmentInsertOutvotesEarlyMistake(t *testing.T) {
	// One early erroneous "less" at index 0 must not drag the candidate to
	// the front when all other evidence points to index 3.
	comps := []Comparison{
		{0, true}, // mistake
		{0, false},
		{1, false}, {1, false},
		{2, false}, {2, false},
		{3, true}, {3, true},
	}
	if got := AlignmentInsert(4, comps); got != 3 {
		t.Fatalf("insert = %d, want 3", got)
	}
	// The naive rule is derailed by the same mistake.
	if got := FirstLessInsert(4, comps); got != 0 {
		t.Fatalf("naive insert = %d, want 0", got)
	}
}

func TestAlignmentInsertEdges(t *testing.T) {
	if got := AlignmentInsert(0, nil); got != 0 {
		t.Fatalf("empty list insert = %d", got)
	}
	if got := AlignmentInsert(-3, nil); got != 0 {
		t.Fatalf("negative list insert = %d", got)
	}
	// All-greater evidence puts the item at the end.
	comps := []Comparison{{0, false}, {1, false}}
	if got := AlignmentInsert(2, comps); got != 2 {
		t.Fatalf("insert = %d, want 2", got)
	}
	// Out-of-range indices are ignored.
	comps = []Comparison{{-1, true}, {99, false}, {0, true}}
	if got := AlignmentInsert(2, comps); got != 0 {
		t.Fatalf("insert = %d, want 0", got)
	}
}

func TestAlignmentInsertOptimalProperty(t *testing.T) {
	// Property: the chosen position has violations <= every other position.
	violationsAt := func(listLen, p int, comps []Comparison) int {
		v := 0
		for _, c := range comps {
			if c.ListIndex < 0 || c.ListIndex >= listLen {
				continue
			}
			if c.ListIndex < p && c.Less {
				v++
			}
			if c.ListIndex >= p && !c.Less {
				v++
			}
		}
		return v
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		listLen := 1 + rng.Intn(12)
		var comps []Comparison
		for i := 0; i < listLen*2; i++ {
			comps = append(comps, Comparison{
				ListIndex: rng.Intn(listLen),
				Less:      rng.Intn(2) == 0,
			})
		}
		best := AlignmentInsert(listLen, comps)
		bv := violationsAt(listLen, best, comps)
		for p := 0; p <= listLen; p++ {
			if violationsAt(listLen, p, comps) < bv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInsertAt(t *testing.T) {
	list := []string{"a", "b"}
	if got := InsertAt(list, "x", 1); !reflect.DeepEqual(got, []string{"a", "x", "b"}) {
		t.Fatalf("InsertAt = %v", got)
	}
	if got := InsertAt(list, "x", -5); !reflect.DeepEqual(got, []string{"x", "a", "b"}) {
		t.Fatalf("clamped low = %v", got)
	}
	if got := InsertAt(list, "x", 99); !reflect.DeepEqual(got, []string{"a", "b", "x"}) {
		t.Fatalf("clamped high = %v", got)
	}
	if !reflect.DeepEqual(list, []string{"a", "b"}) {
		t.Fatal("InsertAt mutated input")
	}
}

func TestFirstLessInsertNoLess(t *testing.T) {
	comps := []Comparison{{0, false}, {1, false}}
	if got := FirstLessInsert(2, comps); got != 2 {
		t.Fatalf("FirstLessInsert = %d, want listLen", got)
	}
}

package quality

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/llm"
)

// noisyYesNo returns a model that answers a fixed ground truth with the
// given accuracy, deterministically per (prompt, seed).
func noisyYesNo(name string, truth func(prompt string) bool, accuracy float64) llm.Model {
	return llm.Func{ModelName: name, Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		h := int64(0)
		for _, c := range req.Prompt {
			h = h*31 + int64(c)
		}
		rng := rand.New(rand.NewSource(h ^ req.Seed<<1))
		ans := truth(req.Prompt)
		if rng.Float64() > accuracy {
			ans = !ans
		}
		text := "No"
		if ans {
			text = "Yes"
		}
		return llm.Response{Text: text, Model: name}, nil
	}}
}

func TestEstimateAccuracy(t *testing.T) {
	ask := func(ctx context.Context, input string) (string, error) {
		if input == "bad" {
			return "", fmt.Errorf("boom")
		}
		return input, nil // echo: correct iff gold == input
	}
	val := []Labeled{
		{Input: "a", Gold: "a"},
		{Input: "b", Gold: "x"},
		{Input: "bad", Gold: "bad"},
		{Input: "c", Gold: "c"},
	}
	acc, err := EstimateAccuracy(context.Background(), ask, val)
	if err == nil {
		t.Fatal("first asker error should be surfaced")
	}
	if acc != 0.5 {
		t.Fatalf("acc = %f, want 0.5", acc)
	}
	if _, err := EstimateAccuracy(context.Background(), ask, nil); err == nil {
		t.Fatal("empty validation should error")
	}
}

func TestEMBinaryRecoversAccuracies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const tasks = 500
	accs := []float64{0.9, 0.8, 0.7, 0.65, 0.55}
	truth := make([]bool, tasks)
	votes := make([][]bool, tasks)
	for i := range votes {
		truth[i] = rng.Intn(2) == 0
		row := make([]bool, len(accs))
		for j, a := range accs {
			row[j] = truth[i]
			if rng.Float64() > a {
				row[j] = !row[j]
			}
		}
		votes[i] = row
	}
	res, err := EMBinary(votes, 200, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range accs {
		if diff := res.ModelAccuracy[j] - want; diff > 0.07 || diff < -0.07 {
			t.Errorf("model %d accuracy = %.3f, want ~%.2f", j, res.ModelAccuracy[j], want)
		}
	}
	emCorrect, majCorrect := 0, 0
	for i := range truth {
		if res.Consensus[i] == truth[i] {
			emCorrect++
		}
		y := 0
		for _, v := range votes[i] {
			if v {
				y++
			}
		}
		if (2*y > len(accs)) == truth[i] {
			majCorrect++
		}
	}
	// The EM consensus must beat plain majority vote — the reason to run
	// EM at all.
	if emCorrect <= majCorrect {
		t.Fatalf("EM consensus %d should beat majority vote %d", emCorrect, majCorrect)
	}
	if frac := float64(emCorrect) / tasks; frac < 0.88 {
		t.Fatalf("consensus accuracy = %.3f, want > 0.88", frac)
	}
	if res.Iterations == 0 {
		t.Fatal("EM should iterate")
	}
}

func TestEMBinaryValidation(t *testing.T) {
	if _, err := EMBinary(nil, 10, 0); err == nil {
		t.Fatal("empty matrix should error")
	}
	if _, err := EMBinary([][]bool{{}}, 10, 0); err == nil {
		t.Fatal("zero-model matrix should error")
	}
	if _, err := EMBinary([][]bool{{true}, {true, false}}, 10, 0); err == nil {
		t.Fatal("ragged matrix should error")
	}
}

func TestEMBinaryUnanimous(t *testing.T) {
	votes := [][]bool{{true, true}, {true, true}, {false, false}}
	res, err := EMBinary(votes, 50, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus[0] || !res.Consensus[1] || res.Consensus[2] {
		t.Fatalf("consensus = %v", res.Consensus)
	}
}

func TestMajorityYesNo(t *testing.T) {
	m := noisyYesNo("m", func(string) bool { return true }, 0.8)
	ans, yes, no, err := MajorityYesNo(context.Background(), m, "is water wet?", 15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ans {
		t.Fatalf("majority = %v (yes=%d no=%d)", ans, yes, no)
	}
	if yes+no != 15 {
		t.Fatalf("votes = %d", yes+no)
	}
	if _, _, _, err := MajorityYesNo(context.Background(), m, "p", 0, 1); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestMajorityYesNoAllUnparseable(t *testing.T) {
	m := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{Text: "mumble"}, nil
	}}
	_, _, _, err := MajorityYesNo(context.Background(), m, "p", 3, 1)
	if !errors.Is(err, ErrNoAnswer) {
		t.Fatalf("want ErrNoAnswer, got %v", err)
	}
}

func TestSequentialYesNoStopsEarly(t *testing.T) {
	m := noisyYesNo("m", func(string) bool { return true }, 1.0) // always right
	ans, asks, err := SequentialYesNo(context.Background(), m, "easy question", 20, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ans {
		t.Fatal("answer should be yes")
	}
	if asks != 3 {
		t.Fatalf("asks = %d, want exactly margin (3) on an easy item", asks)
	}
}

func TestSequentialYesNoExhaustsOnContested(t *testing.T) {
	// A coin-flip model rarely reaches a margin of 8 in 10 asks.
	m := noisyYesNo("m", func(string) bool { return true }, 0.5)
	_, asks, err := SequentialYesNo(context.Background(), m, "contested item", 10, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if asks != 10 {
		t.Fatalf("asks = %d, want max on contested item", asks)
	}
	if _, _, err := SequentialYesNo(context.Background(), m, "p", 0, 1, 1); err == nil {
		t.Fatal("maxAsks=0 should error")
	}
}

func TestAskWithRetry(t *testing.T) {
	calls := 0
	m := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		calls++
		if calls < 3 {
			return llm.Response{Text: "garbage"}, nil
		}
		return llm.Response{Text: "42"}, nil
	}}
	parse := func(s string) (int, error) {
		if s != "42" {
			return 0, fmt.Errorf("nope")
		}
		return 42, nil
	}
	v, err := AskWithRetry(context.Background(), m, "p", parse, 5)
	if err != nil || v != 42 {
		t.Fatalf("got %d, %v", v, err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestAskWithRetryExhausted(t *testing.T) {
	m := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{Text: "junk"}, nil
	}}
	_, err := AskWithRetry(context.Background(), m, "p",
		func(s string) (int, error) { return 0, fmt.Errorf("no") }, 3)
	if !errors.Is(err, ErrNoAnswer) {
		t.Fatalf("want ErrNoAnswer, got %v", err)
	}
}

func TestAskWithRetryModelError(t *testing.T) {
	sentinel := errors.New("down")
	m := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{}, sentinel
	}}
	_, err := AskWithRetry(context.Background(), m, "p",
		func(s string) (int, error) { return 1, nil }, 3)
	if !errors.Is(err, sentinel) {
		t.Fatalf("model errors should propagate, got %v", err)
	}
}

func TestPanelYesNo(t *testing.T) {
	yes := llm.Func{ModelName: "y", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{Text: "Yes"}, nil
	}}
	no := llm.Func{ModelName: "n", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{Text: "No"}, nil
	}}
	ans, y, n, err := PanelYesNo(context.Background(), []llm.Model{yes, yes, no}, "q")
	if err != nil {
		t.Fatal(err)
	}
	if !ans || y != 2 || n != 1 {
		t.Fatalf("ans=%v y=%d n=%d", ans, y, n)
	}
	// Tie resolves to no.
	ans, _, _, err = PanelYesNo(context.Background(), []llm.Model{yes, no}, "q")
	if err != nil || ans {
		t.Fatalf("tie should resolve to no: %v %v", ans, err)
	}
	if _, _, _, err := PanelYesNo(context.Background(), nil, "q"); err == nil {
		t.Fatal("empty panel should error")
	}
}

func TestCascadeYesNo(t *testing.T) {
	// Cheap model: always wrong on "hard", always right on "easy".
	cheap := llm.Func{ModelName: "cheap", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		if strings.Contains(req.Prompt, "hard") {
			// Disagreeing samples: alternate by seed.
			if req.Seed%2 == 0 {
				return llm.Response{Text: "Yes"}, nil
			}
			return llm.Response{Text: "No"}, nil
		}
		return llm.Response{Text: "Yes"}, nil
	}}
	strongCalls := 0
	strong := llm.Func{ModelName: "strong", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		strongCalls++
		return llm.Response{Text: "No"}, nil
	}}

	// Easy question: unanimous cheap votes, no escalation.
	ans, escalated, err := CascadeYesNo(context.Background(), cheap, strong, "easy question", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ans || escalated || strongCalls != 0 {
		t.Fatalf("easy: ans=%v escalated=%v strongCalls=%d", ans, escalated, strongCalls)
	}
	// Hard question: split votes, escalate to the strong model.
	ans, escalated, err = CascadeYesNo(context.Background(), cheap, strong, "hard question", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ans || !escalated || strongCalls != 1 {
		t.Fatalf("hard: ans=%v escalated=%v strongCalls=%d", ans, escalated, strongCalls)
	}
	if _, _, err := CascadeYesNo(context.Background(), cheap, strong, "q", 0, 1); err == nil {
		t.Fatal("cheapVotes=0 should error")
	}
}

func TestCascadeEscalatesOnUnparseableCheap(t *testing.T) {
	cheap := llm.Func{ModelName: "cheap", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{Text: "mumble"}, nil
	}}
	strong := llm.Func{ModelName: "strong", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{Text: "Yes"}, nil
	}}
	ans, escalated, err := CascadeYesNo(context.Background(), cheap, strong, "q", 3, 1)
	if err != nil || !ans || !escalated {
		t.Fatalf("ans=%v escalated=%v err=%v", ans, escalated, err)
	}
}

func TestVerifyAnswer(t *testing.T) {
	// A verifier that approves "42" and rejects everything else.
	verifier := llm.Func{ModelName: "v", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		if strings.Contains(req.Prompt, "It answered: 42") {
			return llm.Response{Text: "Yes, that is correct."}, nil
		}
		return llm.Response{Text: "No."}, nil
	}}
	ok, err := VerifyAnswer(context.Background(), verifier, "what is six times seven?", "42")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	ok, err = VerifyAnswer(context.Background(), verifier, "what is six times seven?", "41")
	if err != nil || ok {
		t.Fatalf("wrong answer should be rejected: ok=%v err=%v", ok, err)
	}
	// Unparseable verifier output is ErrNoAnswer.
	mumble := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{Text: "hmm"}, nil
	}}
	if _, err := VerifyAnswer(context.Background(), mumble, "q", "a"); !errors.Is(err, ErrNoAnswer) {
		t.Fatalf("want ErrNoAnswer, got %v", err)
	}
}

// Package quality implements the quality-control toolbox of Section 3.5:
// accuracy estimation against a validation set, Dawid–Skene-style
// expectation–maximisation across models when no ground truth exists,
// majority voting / self-consistency, sequential ask-again policies
// (CrowdScreen-style), answer verification follow-ups, and parse-retry.
package quality

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/llm"
	"repro/internal/prompt"
)

// ErrNoAnswer reports that a quality-control procedure could not settle
// on an answer (e.g. every retry failed to parse).
var ErrNoAnswer = errors.New("quality: no usable answer")

// Labeled is one validation example for accuracy estimation.
type Labeled struct {
	// Input is the task input handed to the asker.
	Input string
	// Gold is the expected answer, compared case-sensitively after
	// trimming by EstimateAccuracy.
	Gold string
}

// Asker abstracts one unit task: given an input, produce an answer.
type Asker func(ctx context.Context, input string) (string, error)

// EstimateAccuracy runs the asker over a validation set and returns the
// fraction of answers equal to the gold label. Asker errors count as
// wrong answers (a production task would fail the same way) but the
// first error is also returned for diagnosis.
func EstimateAccuracy(ctx context.Context, ask Asker, validation []Labeled) (float64, error) {
	if len(validation) == 0 {
		return 0, fmt.Errorf("quality: empty validation set")
	}
	correct := 0
	var firstErr error
	for _, v := range validation {
		got, err := ask(ctx, v.Input)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if got == v.Gold {
			correct++
		}
	}
	return float64(correct) / float64(len(validation)), firstErr
}

// EMResult is the output of EMBinary.
type EMResult struct {
	// ModelAccuracy is the estimated per-model accuracy, index-aligned
	// with the vote matrix columns.
	ModelAccuracy []float64
	// PosteriorYes is the posterior probability that each task's true
	// answer is "yes".
	PosteriorYes []float64
	// Consensus is PosteriorYes thresholded at 0.5.
	Consensus []bool
	// Iterations is the number of EM rounds executed.
	Iterations int
}

// EMBinary runs one-coin Dawid–Skene expectation–maximisation over a
// votes matrix: votes[i][j] is model j's yes/no answer to task i. It
// estimates each model's (unknown, fixed) accuracy and the consensus
// answer per task, assuming models answer independently — the classic
// crowdsourcing quality-control setup the paper proposes reusing for
// LLMs. The matrix must be rectangular with at least one row and column.
func EMBinary(votes [][]bool, maxIter int, tol float64) (EMResult, error) {
	n := len(votes)
	if n == 0 {
		return EMResult{}, fmt.Errorf("quality: empty vote matrix")
	}
	m := len(votes[0])
	if m == 0 {
		return EMResult{}, fmt.Errorf("quality: vote matrix has no models")
	}
	for i, row := range votes {
		if len(row) != m {
			return EMResult{}, fmt.Errorf("quality: ragged vote matrix at row %d", i)
		}
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	if tol <= 0 {
		tol = 1e-6
	}

	// Initialise posteriors from a sharpened majority vote. A soft
	// initialisation leaves EM in a flat region where it can drift to a
	// local optimum that overtrusts a mediocre voter; anchoring near the
	// majority answer puts it in the basin of the consensus solution.
	post := make([]float64, n)
	for i, row := range votes {
		yes := 0
		for _, v := range row {
			if v {
				yes++
			}
		}
		switch {
		case 2*yes > m:
			post[i] = 0.9
		case 2*yes < m:
			post[i] = 0.1
		default:
			post[i] = 0.5
		}
	}
	acc := make([]float64, m)
	iter := 0
	for ; iter < maxIter; iter++ {
		// M step: model accuracy = expected agreement with posterior.
		maxDelta := 0.0
		for j := 0; j < m; j++ {
			agree := 0.0
			for i := 0; i < n; i++ {
				if votes[i][j] {
					agree += post[i]
				} else {
					agree += 1 - post[i]
				}
			}
			next := (agree + 1) / (float64(n) + 2) // Laplace smoothing
			if d := math.Abs(next - acc[j]); d > maxDelta {
				maxDelta = d
			}
			acc[j] = next
		}
		// E step: posterior per task from model accuracies, uniform prior.
		for i := 0; i < n; i++ {
			logYes, logNo := 0.0, 0.0
			for j := 0; j < m; j++ {
				a := clampProb(acc[j])
				if votes[i][j] {
					logYes += math.Log(a)
					logNo += math.Log(1 - a)
				} else {
					logYes += math.Log(1 - a)
					logNo += math.Log(a)
				}
			}
			// Normalise in log space.
			mx := math.Max(logYes, logNo)
			py := math.Exp(logYes - mx)
			pn := math.Exp(logNo - mx)
			post[i] = py / (py + pn)
		}
		if iter > 0 && maxDelta < tol {
			iter++
			break
		}
	}
	res := EMResult{ModelAccuracy: acc, PosteriorYes: post, Iterations: iter}
	res.Consensus = make([]bool, n)
	for i, p := range post {
		res.Consensus[i] = p >= 0.5
	}
	return res, nil
}

func clampProb(p float64) float64 {
	const eps = 1e-6
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// MajorityYesNo samples the same yes/no prompt k times at the given
// temperature (distinct seeds) and returns the majority answer plus the
// vote split. Unparseable samples are skipped; if every sample is
// unparseable the result is ErrNoAnswer. This is the self-consistency
// pattern the paper cites (Wang et al.).
func MajorityYesNo(ctx context.Context, model llm.Model, promptText string, k int, temperature float64) (answer bool, yes, no int, err error) {
	if k <= 0 {
		return false, 0, 0, fmt.Errorf("quality: k must be positive")
	}
	for seed := 0; seed < k; seed++ {
		resp, cerr := model.Complete(ctx, llm.Request{
			Prompt:      promptText,
			Temperature: temperature,
			Seed:        int64(seed),
		})
		if cerr != nil {
			return false, yes, no, cerr
		}
		v, perr := prompt.ParseYesNo(resp.Text)
		if perr != nil {
			continue
		}
		if v {
			yes++
		} else {
			no++
		}
	}
	if yes+no == 0 {
		return false, 0, 0, fmt.Errorf("all %d samples unparseable: %w", k, ErrNoAnswer)
	}
	return yes > no, yes, no, nil
}

// SequentialYesNo implements a CrowdScreen-style sequential policy: keep
// sampling the prompt (rising seeds, the given temperature) until one
// answer leads by margin votes or maxAsks samples have been taken, then
// return the leader. It spends more on contested items and less on easy
// ones — the probabilistic ask-or-finalise idea of Section 3.5.
func SequentialYesNo(ctx context.Context, model llm.Model, promptText string, maxAsks, margin int, temperature float64) (answer bool, asks int, err error) {
	if maxAsks <= 0 || margin <= 0 {
		return false, 0, fmt.Errorf("quality: maxAsks and margin must be positive")
	}
	yes, no := 0, 0
	for seed := 0; seed < maxAsks; seed++ {
		resp, cerr := model.Complete(ctx, llm.Request{
			Prompt:      promptText,
			Temperature: temperature,
			Seed:        int64(seed),
		})
		if cerr != nil {
			return false, seed, cerr
		}
		v, perr := prompt.ParseYesNo(resp.Text)
		if perr != nil {
			continue
		}
		if v {
			yes++
		} else {
			no++
		}
		if yes-no >= margin || no-yes >= margin {
			return yes > no, seed + 1, nil
		}
	}
	if yes+no == 0 {
		return false, maxAsks, fmt.Errorf("all samples unparseable: %w", ErrNoAnswer)
	}
	return yes > no, maxAsks, nil
}

// AskWithRetry issues the prompt and parses the response, retrying with
// fresh seeds (at temperature 0.3 from the second attempt, so the model
// actually re-rolls) until the parser accepts or attempts are exhausted —
// the "check the output, then retry the query" loop the paper describes
// as today's main quality-control practice.
func AskWithRetry[T any](ctx context.Context, model llm.Model, promptText string, parse func(string) (T, error), attempts int) (T, error) {
	var zero T
	if attempts <= 0 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		req := llm.Request{Prompt: promptText}
		if i > 0 {
			req.Temperature = 0.3
			req.Seed = int64(i)
		}
		resp, err := model.Complete(ctx, req)
		if err != nil {
			return zero, err
		}
		v, perr := parse(resp.Text)
		if perr == nil {
			return v, nil
		}
		lastErr = perr
	}
	return zero, fmt.Errorf("%d attempts failed (last: %v): %w", attempts, lastErr, ErrNoAnswer)
}

// VerifyAnswer asks the verifier model whether a previously produced
// answer to a question is correct (Section 3.5's verification pattern).
func VerifyAnswer(ctx context.Context, verifier llm.Model, question, answer string) (bool, error) {
	resp, err := verifier.Complete(ctx, llm.Request{Prompt: prompt.Verify(question, answer)})
	if err != nil {
		return false, err
	}
	ok, perr := prompt.ParseYesNo(resp.Text)
	if perr != nil {
		return false, fmt.Errorf("verifier response unparseable: %w", ErrNoAnswer)
	}
	return ok, nil
}

// PanelYesNo asks the same yes/no prompt to several models and returns
// the simple-majority answer with the split. Ties resolve to "no" (the
// conservative answer for match tasks). Models whose responses cannot be
// parsed abstain.
func PanelYesNo(ctx context.Context, models []llm.Model, promptText string) (answer bool, yes, no int, err error) {
	if len(models) == 0 {
		return false, 0, 0, fmt.Errorf("quality: empty panel")
	}
	for _, m := range models {
		resp, cerr := m.Complete(ctx, llm.Request{Prompt: promptText})
		if cerr != nil {
			return false, yes, no, cerr
		}
		v, perr := prompt.ParseYesNo(resp.Text)
		if perr != nil {
			continue
		}
		if v {
			yes++
		} else {
			no++
		}
	}
	if yes+no == 0 {
		return false, 0, 0, fmt.Errorf("entire panel unparseable: %w", ErrNoAnswer)
	}
	return yes > no, yes, no, nil
}

// CascadeYesNo implements the FrugalGPT-style model cascade the paper
// cites (Chen et al.): sample the cheap model cheapVotes times; when its
// votes are unanimous, return them without touching the strong model,
// otherwise escalate the question to the strong model and return its
// answer. The returned escalated flag reports which path decided.
func CascadeYesNo(ctx context.Context, cheap, strong llm.Model, promptText string, cheapVotes int, temperature float64) (answer, escalated bool, err error) {
	if cheapVotes <= 0 {
		return false, false, fmt.Errorf("quality: cheapVotes must be positive")
	}
	yes, no := 0, 0
	for seed := 0; seed < cheapVotes; seed++ {
		resp, cerr := cheap.Complete(ctx, llm.Request{
			Prompt:      promptText,
			Temperature: temperature,
			Seed:        int64(seed),
		})
		if cerr != nil {
			return false, false, cerr
		}
		v, perr := prompt.ParseYesNo(resp.Text)
		if perr != nil {
			continue // unparseable counts as disagreement evidence below
		}
		if v {
			yes++
		} else {
			no++
		}
	}
	if yes+no == cheapVotes && (yes == 0 || no == 0) {
		return yes > 0, false, nil
	}
	resp, cerr := strong.Complete(ctx, llm.Request{Prompt: promptText})
	if cerr != nil {
		return false, true, cerr
	}
	v, perr := prompt.ParseYesNo(resp.Text)
	if perr != nil {
		return false, true, fmt.Errorf("strong model unparseable: %w", ErrNoAnswer)
	}
	return v, true, nil
}

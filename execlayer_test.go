package declprompt

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

// TestSharedExecutionLayerReducesCalls is the PR's headline acceptance
// criterion: on a repeated workload, the shared layer (sharded cache +
// in-flight coalescing) cuts upstream simulator calls at least 2x versus
// the seed's isolated per-operator caches, and batching cuts them
// further.
func TestSharedExecutionLayerReducesCalls(t *testing.T) {
	rows, err := experiments.ExecLayerStudy(context.Background(), experiments.DefaultExecLayerConfig())
	if err != nil {
		t.Fatal(err)
	}
	isolated, shared, batched := rows[0], rows[1], rows[2]
	if shared.Reduction < 2.0 {
		t.Fatalf("shared layer reduction = %.2fx (isolated %d calls, shared %d), want >= 2x",
			shared.Reduction, isolated.UpstreamCalls, shared.UpstreamCalls)
	}
	if batched.UpstreamCalls > shared.UpstreamCalls {
		t.Fatalf("batching increased upstream calls: %d > %d", batched.UpstreamCalls, shared.UpstreamCalls)
	}
	if shared.CacheHits == 0 {
		t.Fatal("shared layer reported zero cache hits on a repeated workload")
	}
}

// TestBatchedStrategiesMatchUnbatched: at temperature 0, enabling unit
// task batching must not change any operator result — the envelope is
// split back into the exact per-task answers, and tasks the model skips
// fall back to their standalone prompt.
func TestBatchedStrategiesMatchUnbatched(t *testing.T) {
	ctx := context.Background()
	items := dataset.FlavorNames()
	imp := dataset.GenerateRestaurants(80, 30, 11)

	run := func(opts ...Option) (FilterResult, CategorizeResult, ImputeResult) {
		t.Helper()
		engine := NewEngine(NewSimModel("sim-gpt-3.5-turbo"), append([]Option{WithParallelism(8)}, opts...)...)
		fr, err := engine.Filter(ctx, FilterRequest{
			Items:     items,
			Predicate: "the flavor contains chocolate",
			Strategy:  FilterPerItem,
		})
		if err != nil {
			t.Fatal(err)
		}
		cr, err := engine.Categorize(ctx, CategorizeRequest{
			Items:      items,
			Categories: []string{"chocolate", "fruit", "nut", "other"},
			Strategy:   CategorizeDirect,
		})
		if err != nil {
			t.Fatal(err)
		}
		ir, err := engine.Impute(ctx, ImputeRequest{
			Train:       imp.Train,
			Queries:     imp.Test,
			TargetField: imp.TargetField,
			Strategy:    ImputeLLM,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fr, cr, ir
	}

	plainF, plainC, plainI := run()
	batchF, batchC, batchI := run(WithBatching(5))

	if !reflect.DeepEqual(plainF.Keep, batchF.Keep) {
		t.Errorf("batched filter decisions diverge:\nplain  %v\nbatched %v", plainF.Keep, batchF.Keep)
	}
	if !reflect.DeepEqual(plainC.Assignments, batchC.Assignments) {
		t.Errorf("batched categorize assignments diverge:\nplain  %v\nbatched %v", plainC.Assignments, batchC.Assignments)
	}
	if !reflect.DeepEqual(plainI.Values, batchI.Values) {
		t.Errorf("batched impute values diverge:\nplain  %v\nbatched %v", plainI.Values, batchI.Values)
	}
	// Batching must also pay off: fewer upstream calls than one per task.
	if batchF.Usage.Calls >= plainF.Usage.Calls {
		t.Errorf("batched filter calls = %d, want < %d", batchF.Usage.Calls, plainF.Usage.Calls)
	}
}

// TestBatchedFilterMatchesUnbatchedWithSharedLayer exercises the full
// stack together: shared cache + coalescer above, batcher below.
func TestBatchedFilterMatchesUnbatchedWithSharedLayer(t *testing.T) {
	ctx := context.Background()
	items := dataset.FlavorNames()
	req := FilterRequest{Items: items, Predicate: "the flavor contains fruit", Strategy: FilterPerItem}

	plainEngine := NewEngine(NewSimModel("sim-gpt-3.5-turbo"))
	plain, err := plainEngine.Filter(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	layer := NewExecLayer()
	for round := 0; round < 2; round++ {
		engine := NewEngine(NewSimModel("sim-gpt-3.5-turbo"),
			WithExecutionLayer(layer), WithBatching(6))
		got, err := engine.Filter(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Keep, got.Keep) {
			t.Fatalf("round %d: layered decisions diverge from plain", round)
		}
	}
	if st := layer.Stats(); st.CacheHits == 0 {
		t.Fatalf("second round should be served by the shared cache; stats %+v", st)
	}
}

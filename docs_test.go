package declprompt

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocLinksResolve is the docs link check CI runs: every relative
// link in README.md, ROADMAP.md, docs/*.md, and examples/*/README.md
// must point at a file or directory that exists, so the documentation
// index never rots silently. External URLs and intra-page anchors are
// out of scope.
func TestDocLinksResolve(t *testing.T) {
	var files []string
	for _, pattern := range []string{"README.md", "ROADMAP.md", "docs/*.md", "examples/*/README.md"} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, matches...)
	}
	if len(files) < 7 {
		t.Fatalf("glob found only %d markdown files; the doc set should be larger", len(files))
	}
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		inFence := false
		for lineNo, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				resolved := filepath.Join(filepath.Dir(file), target)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s:%d: link %q does not resolve (%v)", file, lineNo+1, m[1], err)
				}
			}
		}
	}
}

package declprompt

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/llm/httpapi"
	"repro/internal/llm/sim"
	"repro/internal/metrics"
	"repro/internal/workflow"
)

// TestEndToEndSortOverHTTP runs a complete declarative workload through
// the public facade against a real HTTP server: facade engine -> OpenAI
// wire protocol -> simulated model, asserting the result matches the
// in-process run bit for bit.
func TestEndToEndSortOverHTTP(t *testing.T) {
	registry := llm.NewRegistry()
	registry.Register(sim.NewNamed("sim-claude-2"))
	srv := httptest.NewServer(httpapi.NewServer(registry, embed.Default()).Handler())
	defer srv.Close()

	words := dataset.RandomWords(30, 3)
	req := SortRequest{
		Items:     words,
		Criterion: "alphabetical order",
		Strategy:  SortHybridInsert,
	}
	remote := NewEngine(NewHTTPModel(srv.URL, "sim-claude-2"), WithParallelism(4))
	local := NewEngine(NewSimModel("sim-claude-2"), WithParallelism(4))

	ctx := context.Background()
	remoteRes, err := remote.Sort(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	localRes, err := local.Sort(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remoteRes.Ranked, localRes.Ranked) {
		t.Fatal("HTTP and in-process executions diverge")
	}
	if remoteRes.Missing != 0 {
		t.Fatalf("hybrid insert left %d missing", remoteRes.Missing)
	}
	want := append([]string(nil), words...)
	sort.Strings(want)
	tau, err := metrics.KendallTauRanks(want, remoteRes.Ranked)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.95 {
		t.Fatalf("tau = %.3f over HTTP", tau)
	}
}

// TestEndToEndBudgetedImputation runs the Table 4 hybrid through the
// facade under a budget and checks the accounting adds up.
func TestEndToEndBudgetedImputation(t *testing.T) {
	budget := NewBudget(0.50, 0, 0)
	engine := NewEngine(NewSimModel("sim-claude"), WithBudget(budget), WithParallelism(8))
	data := dataset.GenerateRestaurants(150, 40, 2)

	res, err := engine.Impute(context.Background(), ImputeRequest{
		Train:       data.Train,
		Queries:     data.Test,
		TargetField: data.TargetField,
		Strategy:    ImputeHybrid,
		Examples:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LLMCalls+res.KNNDecided != len(data.Test) {
		t.Fatalf("coverage mismatch: %d + %d != %d", res.LLMCalls, res.KNNDecided, len(data.Test))
	}
	spent, dollars := budget.Spent()
	if spent.Calls == 0 || dollars <= 0 {
		t.Fatal("budget recorded nothing")
	}
	if spent.Total() != res.Usage.Total() {
		t.Fatalf("budget tokens (%d) disagree with result usage (%d)", spent.Total(), res.Usage.Total())
	}
	gold := data.Gold()
	correct := 0
	for i, v := range res.Values {
		if strings.EqualFold(strings.TrimSpace(v), gold[i]) {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(gold)); frac < 0.7 {
		t.Fatalf("hybrid accuracy = %.3f, want > 0.7", frac)
	}
}

// TestEndToEndTinyBudgetFailsCleanly confirms budget exhaustion surfaces
// as ErrBudgetExhausted through the facade, not as a hang or partial
// success.
func TestEndToEndTinyBudgetFailsCleanly(t *testing.T) {
	engine := NewEngine(NewSimModel("sim-gpt-3.5-turbo"),
		WithBudget(NewBudget(0, 50, 0)), // 50 tokens: nothing fits
		WithParallelism(2),
	)
	_, err := engine.Sort(context.Background(), SortRequest{
		Items:     dataset.FlavorNames(),
		Criterion: "how chocolatey they are",
		Strategy:  SortPairwise,
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
}

// TestEndToEndModelFailurePropagates injects transient model failures
// and confirms they surface as errors (the engine retries parses, not
// infrastructure faults — those belong to the transport layer, which the
// HTTP client covers).
func TestEndToEndModelFailurePropagates(t *testing.T) {
	flaky := workflow.NewFlaky(NewSimModel("sim-gpt-3.5-turbo"), 2)
	engine := NewEngine(flaky, WithParallelism(1))
	_, err := engine.Sort(context.Background(), SortRequest{
		Items:     dataset.FlavorNames()[:6],
		Criterion: "how chocolatey they are",
		Strategy:  SortPairwise,
	})
	if !errors.Is(err, workflow.ErrInjected) {
		t.Fatalf("want injected failure to propagate, got %v", err)
	}
}

// TestEndToEndRateLimitedEngine drives an operator through a rate-limited
// model and confirms correctness is unaffected.
func TestEndToEndRateLimitedEngine(t *testing.T) {
	limiter := workflow.NewRateLimiter(10000, 8)
	model := workflow.NewRateLimited(NewSimModel("sim-gpt-4"), limiter)
	engine := NewEngine(model, WithParallelism(4))
	res, err := engine.Max(context.Background(), MaxRequest{
		Items:     dataset.FlavorNames(),
		Criterion: "how chocolatey they are",
		Strategy:  MaxRatingThenTournament,
	})
	if err != nil {
		t.Fatal(err)
	}
	top := map[string]bool{}
	for _, f := range dataset.FlavorGroundTruth()[:4] {
		top[f] = true
	}
	if !top[res.Item] {
		t.Fatalf("max = %q, want a top-band flavour", res.Item)
	}
}

// TestFacadeReExports pins the facade surface: constants and helpers must
// round-trip to the internal values.
func TestFacadeReExports(t *testing.T) {
	if SortPairwise != "pairwise" || ImputeHybrid != "hybrid" || ResolveTransitive != "transitive" {
		t.Fatal("strategy constants drifted")
	}
	if PriceFor("sim-gpt-4").InputPer1K <= PriceFor("sim-gpt-3.5-turbo").InputPer1K {
		t.Fatal("price table drifted")
	}
	if CountTokens("hello world") == 0 {
		t.Fatal("CountTokens broken")
	}
	ix := NewEmbeddingIndex()
	ix.Add("a", "some text")
	if ix.Len() != 1 {
		t.Fatal("NewEmbeddingIndex broken")
	}
}

// TestEndToEndJoinWithTransitivity joins two noisy record sets through
// the facade, asserting the transitive strategy matches the nested loop
// at lower cost.
func TestEndToEndJoinWithTransitivity(t *testing.T) {
	corpus := dataset.GenerateCitations(dataset.CitationConfig{
		Entities: 40, Pairs: 10, PositiveFrac: 0.3, Seed: 5,
	})
	// Split cluster members across the two sides.
	var left, right []Entity
	seen := map[int]int{}
	for _, c := range corpus.Records {
		seen[c.Entity]++
		e := Entity{ID: c.ID, Text: c.Text()}
		if seen[c.Entity]%2 == 1 {
			left = append(left, e)
		} else {
			right = append(right, e)
		}
	}
	engine := NewEngine(NewSimModel("sim-gpt-4"), WithParallelism(8))
	ctx := context.Background()
	nested, err := engine.Join(ctx, JoinRequest{Left: left, Right: right, Strategy: JoinNestedLoop})
	if err != nil {
		t.Fatal(err)
	}
	trans, err := engine.Join(ctx, JoinRequest{Left: left, Right: right, Strategy: JoinTransitive, CandidateDistance: 1.05})
	if err != nil {
		t.Fatal(err)
	}
	if trans.LLMComparisons >= nested.LLMComparisons {
		t.Fatalf("transitive comparisons (%d) should undercut nested loop (%d)",
			trans.LLMComparisons, nested.LLMComparisons)
	}
	// Precision check against entity ground truth.
	entityOf := map[string]int{}
	for _, c := range corpus.Records {
		entityOf[c.ID] = c.Entity
	}
	for _, m := range trans.Matches {
		if entityOf[m.LeftID] != entityOf[m.RightID] {
			t.Fatalf("false join %v", m)
		}
	}
}

// TestEndToEndFind runs the Find primitive through the facade.
func TestEndToEndFind(t *testing.T) {
	engine := NewEngine(NewSimModel("sim-gpt-4"), WithParallelism(8))
	res, err := engine.Find(context.Background(), FindRequest{
		Items:       dataset.FlavorNames(),
		Description: "it is a chocolatey flavor",
		Limit:       3,
		Strategy:    FindEmbedFirst,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("matches = %v", res.Matches)
	}
	if res.Checked >= len(dataset.FlavorNames()) {
		t.Fatalf("embed-first checked everything (%d)", res.Checked)
	}
}

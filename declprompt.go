// Package declprompt is a declarative prompt-engineering toolkit: a Go
// reproduction of "Revisiting Prompt Engineering via Declarative
// Crowdsourcing" (CIDR 2024). Users state data-processing objectives —
// sort, resolve, impute, filter, count, max, categorize, join — and the
// engine decomposes them into unit LLM tasks under a selected strategy,
// orchestrates the calls with budgets and caching, repairs noisy answers
// with internal-consistency machinery, and reports exact token costs.
//
// The package is a curated facade over the internal packages; it is the
// API the examples and benchmarks use:
//
//	model := declprompt.NewSimModel("sim-gpt-3.5-turbo")
//	engine := declprompt.NewEngine(model)
//	res, err := engine.Sort(ctx, declprompt.SortRequest{
//	    Items:     items,
//	    Criterion: "how chocolatey they are",
//	    Strategy:  declprompt.SortPairwise,
//	})
//
// Models are pluggable: NewSimModel returns the built-in simulated noisy
// oracle (see internal/llm/sim for the substitution rationale), NewHTTPModel
// speaks the OpenAI-compatible wire protocol to a remote endpoint, and
// any type implementing Model can be used directly.
package declprompt

import (
	"context"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/llm/httpapi"
	"repro/internal/llm/sim"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/token"
	"repro/internal/workflow"
)

// Model is the text-completion abstraction every strategy runs against.
type Model = llm.Model

// Request and Response are the wire types of a single model call.
type (
	Request  = llm.Request
	Response = llm.Response
)

// Usage accounts tokens and calls; Price converts usage to dollars.
type (
	Usage = token.Usage
	Price = token.Price
)

// Engine executes declarative operators against a model.
type Engine = core.Engine

// Option configures an Engine (budget, parallelism, retries, embedder).
type Option = core.Option

// Budget caps the dollar/token/call spend of a workflow.
type Budget = workflow.Budget

// ExecLayer is the shared high-throughput execution substrate: one
// sharded response cache plus one in-flight coalescer spanning every
// engine attached to it via WithExecutionLayer. ExecStats snapshots its
// counters.
type (
	ExecLayer = workflow.ExecLayer
	ExecStats = workflow.ExecStats
)

// Attribution breaks one shared budget's spend down by pipeline stage;
// IndexRegistry shares one built embedding index per distinct corpus
// across operators (see docs/PIPELINE.md).
type (
	Attribution   = workflow.Attribution
	IndexRegistry = embed.Registry
)

// Operator request/result types.
type (
	SortRequest        = core.SortRequest
	SortResult         = core.SortResult
	SortStrategy       = core.SortStrategy
	Entity             = core.Entity
	PairsRequest       = core.PairsRequest
	PairsResult        = core.PairsResult
	ResolveStrategy    = core.ResolveStrategy
	DedupeRequest      = core.DedupeRequest
	DedupeResult       = core.DedupeResult
	DedupeStrategy     = core.DedupeStrategy
	ImputeRequest      = core.ImputeRequest
	ImputeResult       = core.ImputeResult
	ImputeStrategy     = core.ImputeStrategy
	FilterRequest      = core.FilterRequest
	FilterResult       = core.FilterResult
	FilterStrategy     = core.FilterStrategy
	CountRequest       = core.CountRequest
	CountResult        = core.CountResult
	CountStrategy      = core.CountStrategy
	MaxRequest         = core.MaxRequest
	MaxResult          = core.MaxResult
	MaxStrategy        = core.MaxStrategy
	CategorizeRequest  = core.CategorizeRequest
	CategorizeResult   = core.CategorizeResult
	CategorizeStrategy = core.CategorizeStrategy
	JoinRequest        = core.JoinRequest
	JoinResult         = core.JoinResult
	JoinStrategy       = core.JoinStrategy
	FindRequest        = core.FindRequest
	FindResult         = core.FindResult
	FindStrategy       = core.FindStrategy
	Plan               = core.Plan
	Candidate          = core.Candidate
)

// Strategy constants, re-exported from the engine.
const (
	SortOnePrompt          = core.SortOnePrompt
	SortRating             = core.SortRating
	SortPairwise           = core.SortPairwise
	SortPairwiseRepaired   = core.SortPairwiseRepaired
	SortHybridInsert       = core.SortHybridInsert
	SortRatingThenPairwise = core.SortRatingThenPairwise

	ResolveDirect        = core.ResolveDirect
	ResolveTransitive    = core.ResolveTransitive
	ResolveBlockedDirect = core.ResolveBlockedDirect

	DedupePairwise        = core.DedupePairwise
	DedupeGroupBatch      = core.DedupeGroupBatch
	DedupeBlockedPairwise = core.DedupeBlockedPairwise

	ImputeKNN    = core.ImputeKNN
	ImputeLLM    = core.ImputeLLM
	ImputeHybrid = core.ImputeHybrid

	FilterPerItem    = core.FilterPerItem
	FilterMajority   = core.FilterMajority
	FilterSequential = core.FilterSequential

	CountPerItem = core.CountPerItem
	CountEyeball = core.CountEyeball

	MaxTournament           = core.MaxTournament
	MaxRatingThenTournament = core.MaxRatingThenTournament

	CategorizeDirect   = core.CategorizeDirect
	CategorizeTwoPhase = core.CategorizeTwoPhase

	JoinNestedLoop = core.JoinNestedLoop
	JoinTransitive = core.JoinTransitive

	FindScan       = core.FindScan
	FindEmbedFirst = core.FindEmbedFirst
)

// ErrBadRequest reports an invalid operator request; ErrBudgetExhausted a
// refused or over-budget call.
var (
	ErrBadRequest      = core.ErrBadRequest
	ErrBudgetExhausted = workflow.ErrBudgetExhausted
)

// Declarative pipeline layer (internal/pipeline, docs/PIPELINE.md): a
// whole workload — filter, resolve, impute, join, … — described as one
// spec, optimized, and executed as a streaming operator DAG on a shared
// engine with per-stage budget attribution.
type (
	// Record is one row of a pipeline table; Field is one of its
	// name/value pairs.
	Record = dataset.Record
	Field  = dataset.Field
	// PipelineSpec is the JSON-serializable pipeline description.
	PipelineSpec = pipeline.Spec
	// PipelineStage describes one operator stage of a spec.
	PipelineStage = pipeline.StageSpec
	// Pipeline is a compiled, runnable stage DAG.
	Pipeline = pipeline.Pipeline
	// PipelineConfig parameterises one pipeline run (model, budget,
	// shared layer, batching, streaming chunk size).
	PipelineConfig = pipeline.ExecConfig
	// PipelineResult is a run's tables, scalars, and per-stage accounting.
	PipelineResult = pipeline.Result
	// ProbeOptions configures OptimizePipelineProbed's sampling.
	ProbeOptions = pipeline.ProbeOptions
)

// CompilePipeline validates a spec into a runnable pipeline.
func CompilePipeline(spec PipelineSpec) (*Pipeline, error) { return pipeline.Compile(spec) }

// OptimizePipeline rewrites a spec without changing its temperature-0
// results, trusting the spec's selectivity hints; the returned trace
// logs every rewrite. See docs/OPTIMIZER.md.
func OptimizePipeline(spec PipelineSpec) (PipelineSpec, []string, error) {
	return pipeline.Optimize(spec)
}

// OptimizePipelineProbed rewrites like OptimizePipeline but first
// measures each hintless filter's selectivity on a deterministic sample
// of the source table. Pass a cfg with a persistent ExecLayer and
// Attribution shared with the subsequent Run so probe work is re-served
// from cache and attributed as the report's probe row.
func OptimizePipelineProbed(ctx context.Context, spec PipelineSpec, cfg PipelineConfig,
	tables map[string][]Record, opts ProbeOptions) (PipelineSpec, []string, error) {
	return pipeline.OptimizeProbed(ctx, spec, cfg, tables, opts)
}

// NewEngine returns an engine bound to the given model.
func NewEngine(model Model, opts ...Option) *Engine {
	return core.New(model, opts...)
}

// WithBudget enforces a budget on every engine call.
func WithBudget(b *Budget) Option { return core.WithBudget(b) }

// WithParallelism bounds concurrent model calls.
func WithParallelism(p int) Option { return core.WithParallelism(p) }

// WithExecutionLayer attaches a shared execution layer (see NewExecLayer).
func WithExecutionLayer(l *ExecLayer) Option { return core.WithExecutionLayer(l) }

// WithBatching packs up to k compatible unit tasks into one prompt for
// the strategies that issue homogeneous per-item tasks.
func WithBatching(k int) Option { return core.WithBatching(k) }

// WithAttribution records every upstream call's usage under the stage
// label carried by its context (TagStage) — how a pipeline breaks one
// shared budget down per stage.
func WithAttribution(a *Attribution) Option { return core.WithAttribution(a) }

// WithIndexRegistry reuses one built embedding index per distinct corpus
// across the engine's operators (resolve, dedupe, join, find, impute).
func WithIndexRegistry(r *IndexRegistry) Option { return core.WithIndexRegistry(r) }

// WithStateDir enables persistent warm state under dir: the engine's
// response cache is backed by an append-only log replayed on startup,
// and corpus indexes warm-load from persisted files instead of being
// rebuilt. One flag warms both layers across process restarts; flush
// with Engine.FlushState (see docs/PERSISTENCE.md).
func WithStateDir(dir string) Option { return core.WithStateDir(dir) }

// NewAttribution returns an empty per-stage usage ledger.
func NewAttribution() *Attribution { return workflow.NewAttribution() }

// NewIndexRegistry returns an empty content-keyed index registry.
func NewIndexRegistry() *IndexRegistry { return embed.NewRegistry() }

// TagStage returns a context whose engine calls are attributed to the
// given stage label (see WithAttribution).
func TagStage(ctx context.Context, stage string) context.Context {
	return workflow.TagStage(ctx, stage)
}

// NewExecLayer returns a shared execution layer; pass it to any number of
// engines via WithExecutionLayer so one cache and coalescer span them all.
func NewExecLayer() *ExecLayer { return workflow.NewExecLayer() }

// NewBudget returns a budget; caps <= 0 are unlimited.
func NewBudget(maxDollars float64, maxTokens, maxCalls int) *Budget {
	return workflow.NewBudget(maxDollars, maxTokens, maxCalls)
}

// NewSimModel returns a built-in simulated noisy-oracle model. Stock
// profiles: "sim-gpt-3.5-turbo", "sim-gpt-4", "sim-claude",
// "sim-claude-2", "sim-cheap".
func NewSimModel(name string) *sim.Oracle { return sim.NewNamed(name) }

// NewHTTPModel returns a Model that speaks the OpenAI-compatible chat
// protocol to baseURL (see cmd/llmserver).
func NewHTTPModel(baseURL, model string) Model {
	return httpapi.NewClient(baseURL, model, httpapi.ClientOptions{})
}

// PriceFor returns the per-token price table entry for a model name.
func PriceFor(model string) Price { return token.PriceFor(model) }

// CountTokens approximates the token count of a text the way the pricing
// model does.
func CountTokens(s string) int { return token.Count(s) }

// NewEmbeddingIndex returns an exact k-NN index over the default
// character-n-gram embedder, for callers building custom blocking or
// neighbour-augmentation pipelines.
func NewEmbeddingIndex() *embed.Index { return embed.NewIndex(embed.Default()) }

// EmbeddingIndexOptions configures NewEmbeddingIndexWith and
// WithIndexOptions: ANN mode, partition/probe counts, the k-means seed,
// and the int8-quantized tier (Quantize/RerankFactor). See
// docs/VECTOR.md for the recall/speed trade-off.
type EmbeddingIndexOptions = embed.IndexOptions

// WithIndexOptions sets the index configuration the engine's k-NN
// operators build (or fetch from a registry) their corpus indexes with —
// enable ANN probing or the quantized distance tier for large corpora.
func WithIndexOptions(opts EmbeddingIndexOptions) Option { return core.WithIndexOptions(opts) }

// IndexItem is one (id, text) pair for batch insertion via Index.AddAll.
type IndexItem = embed.Item

// NewEmbeddingIndexWith returns a k-NN index over the default embedder
// with explicit options — enable ANN for approximate sublinear queries,
// or Quantize for int8-scored scans with exact re-ranking, each with a
// measured-recall knob (embed.Recall, `declctl index-bench`).
func NewEmbeddingIndexWith(opts EmbeddingIndexOptions) *embed.Index {
	return embed.NewIndexWith(embed.Default(), opts)
}

// Multi-tenant pipeline service (internal/server, cmd/declserver,
// docs/SERVER.md): many tenants' pipelines run concurrently on one shared
// execution substrate — one cache, one coalescer, one index registry, one
// persistent state directory — with per-tenant rate limits, budgets, and
// exact spend attribution.
type (
	// PipelineServer is the service core; ServerConfig parameterises it
	// (model, state dir, concurrency cap, per-tenant defaults and
	// overrides). PipelineServer.Handler() is the HTTP API.
	PipelineServer = server.Server
	ServerConfig   = server.Config
	// TenantLimits override one tenant's admission rate and budget caps
	// (TenantCaps) in ServerConfig.Tenants.
	TenantLimits = server.TenantLimits
	TenantCaps   = server.TenantCaps
	// ServerSubmit is a pipeline submission; ServerJobStatus a job's wire
	// state; ServerTenantReport one tenant's spend/latency/hit-share view.
	ServerSubmit       = server.SubmitRequest
	ServerJobStatus    = server.JobStatus
	ServerTenantReport = server.TenantReport
)

// NewPipelineServer builds the multi-tenant service core; serve its
// Handler() over HTTP (see cmd/declserver) or call Submit in-process.
func NewPipelineServer(cfg ServerConfig) *PipelineServer { return server.New(cfg) }

// TagTenant returns a context whose engine calls are attributed to the
// given tenant label — the per-tenant axis of a service-wide ledger,
// orthogonal to TagStage's per-stage axis.
func TagTenant(ctx context.Context, tenant string) context.Context {
	return workflow.TagTenant(ctx, tenant)
}
